// Fault injection: mutable-link semantics, fault schedules (builders,
// determinism, describe), and the FaultInjector replaying time-varying
// path dynamics against live connections — including the two headline
// robustness properties: a blackout landing mid-fast-recovery ends in a
// clean recovery or a bounded RTO-backoff abort (never a wedged event
// queue), and a mid-flow RTT spike below the RTO floor never fires a
// spurious timeout.
#include <gtest/gtest.h>

#include <memory>

#include "net/fault_injector.h"
#include "net/fault_schedule.h"
#include "net/link.h"
#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::net {
namespace {

using namespace prr::sim::literals;

Segment data_seg(uint64_t seq, uint32_t len) {
  Segment s;
  s.seq = seq;
  s.len = len;
  return s;
}

// ---- mutable Link ----

TEST(MutableLink, RateChangeAppliesToNextSerialization) {
  sim::Simulator sim;
  std::vector<sim::Time> arrivals;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1.2);
  cfg.propagation_delay = 50_ms;
  Link link(sim, cfg, [&](Segment) { arrivals.push_back(sim.now()); });

  link.send(data_seg(0, 1000));
  // Halve the rate while the first segment is still serializing: the
  // in-flight segment keeps its old finish time, the next is slower.
  sim.schedule_in(1_ms, [&] { link.set_rate(util::DataRate::mbps(0.6)); });
  sim.schedule_in(2_ms, [&] { link.send(data_seg(1000, 1000)); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0].ms_d(), 6.933 + 50.0, 0.01);
  // Second segment serializes at 0.6 Mbps (13.867 ms) starting when the
  // first finishes at 6.933 ms.
  EXPECT_NEAR(arrivals[1].ms_d(), 6.933 + 13.867 + 50.0, 0.05);
}

TEST(MutableLink, PropagationDelayChangeAffectsSubsequentSegments) {
  sim::Simulator sim;
  std::vector<sim::Time> arrivals;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(100);  // serialization negligible
  cfg.propagation_delay = 10_ms;
  Link link(sim, cfg, [&](Segment) { arrivals.push_back(sim.now()); });

  link.send(data_seg(0, 1000));
  sim.schedule_in(5_ms, [&] {
    link.set_propagation_delay(60_ms);
    link.send(data_seg(1000, 1000));
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0].ms_d(), 10.0, 0.2);   // old delay
  EXPECT_NEAR(arrivals[1].ms_d(), 65.0, 0.2);   // new delay
  EXPECT_EQ(link.propagation_delay(), 60_ms);
}

TEST(MutableLink, QueueShrinkDropsTail) {
  sim::Simulator sim;
  int delivered = 0;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1.2);
  cfg.propagation_delay = 1_ms;
  cfg.queue_limit_packets = 10;
  Link link(sim, cfg, [&](Segment) { ++delivered; });

  // One serializing + 8 queued.
  for (int i = 0; i < 9; ++i) link.send(data_seg(i * 1000, 1000));
  link.set_queue_limit(3);
  EXPECT_EQ(link.queue_limit(), 3u);
  sim.run();
  // Serializing segment + 3 surviving queued segments deliver.
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(link.stats().dropped_queue, 5u);
}

TEST(MutableLink, BlackoutDropsAtEndOfSerialization) {
  sim::Simulator sim;
  int delivered = 0;
  Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1.2);
  cfg.propagation_delay = 1_ms;
  Link link(sim, cfg, [&](Segment) { ++delivered; });

  for (int i = 0; i < 4; ++i) link.send(data_seg(i * 1000, 1000));
  // Dark from 8 ms to 16 ms: segment 1 (finishes ~6.9 ms) survives,
  // segment 2 (~13.9 ms) dies crossing the link, segments 3-4 (~20.8,
  // 27.7 ms) survive.
  sim.schedule_in(8_ms, [&] { link.set_blackout(true); });
  sim.schedule_in(16_ms, [&] { link.set_blackout(false); });
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.stats().dropped_blackout, 1u);
}

// ---- FaultSchedule ----

TEST(FaultSchedule, BuildersProduceSortedEvents) {
  FaultSchedule s = FaultSchedule::blackout(2_s, 500_ms);
  s.merge(FaultSchedule::rtt_spike(1_s, 3.0, 2_s));
  s.merge(FaultSchedule::queue_resize(3_s, 16));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kRttSpike);
  EXPECT_EQ(s.events()[1].kind, FaultKind::kBlackout);
  EXPECT_EQ(s.events()[2].kind, FaultKind::kQueueResize);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s.events()[i].at, s.events()[i - 1].at);
  }
}

TEST(FaultSchedule, FlapExpandsToRepeats) {
  FaultSchedule s = FaultSchedule::flap(1_s, 3, 200_ms, 300_ms);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].at, 1_s);
  EXPECT_EQ(s.events()[1].at, 1_s + 200_ms + 300_ms);
  EXPECT_EQ(s.events()[2].at, 1_s + 2 * (200_ms + 300_ms));
  for (const auto& e : s.events()) {
    EXPECT_EQ(e.kind, FaultKind::kBlackout);
    EXPECT_EQ(e.duration, 200_ms);
  }
}

TEST(FaultSchedule, RandomIsDeterministicInSeed) {
  FaultProfile profile;
  profile.p_blackout = 0.6;
  profile.p_rtt_spike = 0.6;
  profile.p_bandwidth_shift = 0.6;
  profile.p_queue_resize = 0.6;
  profile.p_ack_outage = 0.6;
  profile.p_receiver_stall = 0.6;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultSchedule a = FaultSchedule::random(profile, sim::Rng(seed));
    FaultSchedule b = FaultSchedule::random(profile, sim::Rng(seed));
    ASSERT_EQ(a.size(), b.size()) << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.events()[i].at, b.events()[i].at);
      EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
      EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
      EXPECT_DOUBLE_EQ(a.events()[i].scale, b.events()[i].scale);
      EXPECT_EQ(a.events()[i].queue_limit_packets,
                b.events()[i].queue_limit_packets);
    }
    EXPECT_EQ(a.describe(), b.describe());
  }
}

TEST(FaultSchedule, RandomRespectsProfileRanges) {
  FaultProfile profile;
  profile.p_blackout = 1.0;
  profile.p_rtt_spike = 1.0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    FaultSchedule s = FaultSchedule::random(profile, sim::Rng(seed));
    EXPECT_FALSE(s.empty());
    for (const auto& e : s.events()) {
      EXPECT_GE(e.at, profile.horizon / 8);
      EXPECT_LE(e.at, profile.horizon);
      if (e.kind == FaultKind::kBlackout) {
        EXPECT_GE(e.duration, profile.blackout_min);
        EXPECT_LE(e.duration, profile.blackout_max);
      } else if (e.kind == FaultKind::kRttSpike) {
        EXPECT_GE(e.scale, profile.rtt_scale_min);
        EXPECT_LE(e.scale, profile.rtt_scale_max);
      }
    }
  }
}

TEST(FaultSchedule, DescribeNamesEveryEvent) {
  FaultSchedule s = FaultSchedule::blackout(1_s, 500_ms);
  s.merge(FaultSchedule::bandwidth_shift(2_s, 0.5));
  const std::string d = s.describe();
  EXPECT_NE(d.find("blackout"), std::string::npos);
  EXPECT_NE(d.find("bw_shift"), std::string::npos);
  EXPECT_EQ(FaultSchedule().describe(), "(none)");
}

// ---- FaultInjector on live connections ----

tcp::ConnectionConfig chaos_config() {
  tcp::ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.handshake_rtt = 100_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(1.2),
                                          100_ms, 100);
  return cfg;
}

TEST(FaultInjector, BlackoutDuringFastRecoveryEndsCleanOrBoundedAbort) {
  // Drop two segments to force fast recovery, then black out the data
  // link right as recovery is underway. The connection must either
  // recover and finish, or abort after the configured RTO backoffs —
  // and in every case the event queue must drain (no wedged timers).
  for (int backoffs : {3, 7}) {
    sim::Simulator sim;
    tcp::ConnectionConfig cfg = chaos_config();
    cfg.sender.max_rto_backoffs = backoffs;
    tcp::Metrics m;
    tcp::Connection conn(sim, cfg, sim::Rng(11), &m, nullptr);
    conn.path().data_link().set_loss_model(
        std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{2, 3}));

    FaultInjector injector(sim, conn.path(),
                           FaultSchedule::blackout(350_ms, 2_s));
    injector.arm();

    conn.write(40'000);
    sim.run(sim::Time::seconds(600));

    EXPECT_EQ(injector.stats().blackouts, 1u);
    EXPECT_GT(m.fast_recovery_events, 0u);
    if (conn.sender().aborted()) {
      EXPECT_LE(m.timeouts_total,
                static_cast<uint64_t>(backoffs) + 2)  // +RTO per write burst
          << "backoffs=" << backoffs;
    } else {
      EXPECT_TRUE(conn.sender().all_acked()) << "backoffs=" << backoffs;
    }
    EXPECT_TRUE(sim.idle()) << "event queue wedged, backoffs=" << backoffs;
    EXPECT_FALSE(conn.sender().loss_timers_pending());
  }
}

TEST(FaultInjector, ShortBlackoutRecoversWithoutAbort) {
  sim::Simulator sim;
  tcp::Metrics m;
  tcp::Connection conn(sim, chaos_config(), sim::Rng(12), &m, nullptr);
  FaultInjector injector(sim, conn.path(),
                         FaultSchedule::blackout(300_ms, 400_ms));
  injector.arm();
  conn.write(60'000);
  sim.run(sim::Time::seconds(120));
  EXPECT_FALSE(conn.sender().aborted());
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(sim.idle());
}

TEST(FaultInjector, RttSpikeBelowRtoFloorFiresNoSpuriousTimeout) {
  // RFC 6298 keeps RTO >= 200 ms here; a 100 ms RTT spiked x1.8 stays
  // at 180 ms < RTO, so a well-formed timer must never fire: zero
  // timeouts, no retransmissions of any kind.
  sim::Simulator sim;
  tcp::Metrics m;
  tcp::Connection conn(sim, chaos_config(), sim::Rng(13), &m, nullptr);
  FaultInjector injector(sim, conn.path(),
                         FaultSchedule::rtt_spike(500_ms, 1.8, 3_s));
  injector.arm();
  conn.write(100'000);
  sim.run(sim::Time::seconds(120));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(m.timeouts_total, 0u);
  EXPECT_EQ(m.retransmits_total, 0u);
  EXPECT_EQ(injector.stats().rtt_spikes, 1u);
  // The spike ended: both directions are back at the base delay.
  EXPECT_EQ(conn.path().data_link().propagation_delay(), 50_ms);
  EXPECT_EQ(conn.path().ack_link().propagation_delay(), 50_ms);
}

TEST(FaultInjector, BandwidthShiftCompletesTransfer) {
  sim::Simulator sim;
  tcp::Metrics m;
  tcp::Connection conn(sim, chaos_config(), sim::Rng(14), &m, nullptr);
  FaultInjector injector(sim, conn.path(),
                         FaultSchedule::bandwidth_shift(400_ms, 0.25));
  injector.arm();
  conn.write(60'000);
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(sim.idle());
  EXPECT_NEAR(conn.path().data_link().rate().bits_per_second(),
              util::DataRate::mbps(1.2).bits_per_second() * 0.25, 1.0);
}

TEST(FaultInjector, AckOutageSurvivable) {
  sim::Simulator sim;
  tcp::Metrics m;
  tcp::ConnectionConfig cfg = chaos_config();
  cfg.sender.max_rto_backoffs = 10;
  tcp::Connection conn(sim, cfg, sim::Rng(15), &m, nullptr);
  FaultInjector injector(sim, conn.path(),
                         FaultSchedule::ack_outage(300_ms, 600_ms));
  injector.arm();
  conn.write(60'000);
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(injector.stats().ack_outages, 1u);
}

TEST(FaultInjector, ReceiverStallHoldsThenReleasesNewestAck) {
  sim::Simulator sim;
  tcp::Metrics m;
  tcp::ConnectionConfig cfg = chaos_config();
  cfg.sender.max_rto_backoffs = 10;
  tcp::Connection conn(sim, cfg, sim::Rng(16), &m, nullptr);
  FaultInjector injector(sim, conn.path(),
                         FaultSchedule::receiver_stall(300_ms, 700_ms));
  injector.arm();
  conn.write(60'000);
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(conn.path().ack_stalled());
  EXPECT_EQ(injector.stats().receiver_stalls, 1u);
}

TEST(FaultInjector, OverlappingFlapsDoNotClearEachOthersGate) {
  // Two overlapping dark periods: the link must stay dark until the
  // later one ends (depth-counted), then everything heals.
  sim::Simulator sim;
  tcp::Metrics m;
  tcp::ConnectionConfig cfg = chaos_config();
  cfg.sender.max_rto_backoffs = 10;
  tcp::Connection conn(sim, cfg, sim::Rng(17), &m, nullptr);
  FaultSchedule s = FaultSchedule::blackout(300_ms, 1_s);
  s.merge(FaultSchedule::blackout(800_ms, 1_s));  // overlaps the first
  FaultInjector injector(sim, conn.path(), s);
  injector.arm();
  bool dark_at_1100 = false;
  sim.schedule_at(sim::Time::milliseconds(1100),
                  [&] { dark_at_1100 = conn.path().data_link().blackout(); });
  conn.write(30'000);
  sim.run(sim::Time::seconds(300));
  // 1.1 s is after the first blackout's end but inside the second.
  EXPECT_TRUE(dark_at_1100);
  EXPECT_FALSE(conn.path().data_link().blackout());
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(sim.idle());
}

TEST(FaultInjector, EverythingProfileNeverWedgesTheQueue) {
  // Randomized all-family schedules across many seeds: whatever happens,
  // the connection ends (completed or aborted) with a drained queue.
  FaultProfile profile;
  profile.p_blackout = 0.7;
  profile.flap_repeats = 3;
  profile.p_bandwidth_shift = 0.7;
  profile.p_rtt_spike = 0.7;
  profile.p_queue_resize = 0.7;
  profile.p_ack_outage = 0.5;
  profile.p_receiver_stall = 0.5;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    sim::Simulator sim;
    tcp::Metrics m;
    tcp::Connection conn(sim, chaos_config(), sim::Rng(seed), &m, nullptr);
    FaultInjector injector(
        sim, conn.path(),
        FaultSchedule::random(profile, sim::Rng(seed).fork(0xFA17)));
    injector.arm();
    conn.write(80'000);
    sim.run(sim::Time::seconds(600));
    EXPECT_TRUE(conn.sender().all_acked() || conn.sender().aborted())
        << "seed " << seed;
    EXPECT_TRUE(sim.idle()) << "seed " << seed;
    EXPECT_FALSE(conn.sender().loss_timers_pending()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace prr::net
