// Calibration tests for the drift detectors (stats/drift.h): no false
// alarms on a stationary series at the default threshold, bounded
// detection delay on a step shift, and the alert-record bookkeeping
// (stat_at_alarm, re-arming) the experiment service relies on.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stats/drift.h"

using namespace prr;

namespace {

TEST(Cusum, StationaryFalseAlarmRateIsBounded) {
  // In-control ARL at k=0.5, h=8 is ~1e4 (Siegmund), so 10 series x
  // 1400 post-calibration observations should see at most a couple of
  // alarms even accounting for baseline-estimation error, and most
  // series should be completely clean.
  stats::Cusum::Config cfg;
  cfg.calibration = 100;
  uint64_t total = 0;
  int clean_series = 0;
  for (uint64_t series = 0; series < 10; ++series) {
    sim::Rng rng = sim::Rng(314).fork(series);
    stats::Cusum cusum(cfg);
    for (int i = 0; i < 1500; ++i) cusum.observe(rng.normal(10.0, 2.0));
    total += cusum.alarms();
    if (cusum.alarms() == 0) ++clean_series;
  }
  EXPECT_LE(total, 4u) << "stationary false-alarm rate way above ARL";
  EXPECT_GE(clean_series, 7);
}

TEST(Cusum, ServiceDefaultsRarelyFalseAlarmOverASoakHorizon) {
  // The service's defaults (calibration 30, h 8) trade baseline
  // precision for fast arming; over a 2-simulated-day soak horizon
  // (~300 snapshot windows) a stationary series must alarm at most
  // once in a while — not repeatedly.
  uint64_t total = 0;
  for (uint64_t series = 0; series < 5; ++series) {
    sim::Rng rng = sim::Rng(628).fork(series);
    stats::Cusum cusum;
    for (int i = 0; i < 300; ++i) cusum.observe(rng.normal(0.02, 0.005));
    EXPECT_LE(cusum.alarms(), 2u);
    total += cusum.alarms();
  }
  EXPECT_LE(total, 3u);
}

TEST(Cusum, NeverAlarmsDuringCalibration) {
  // The baseline is learned from the calibration prefix; even a wild
  // prefix must not alarm before the detector is calibrated.
  stats::Cusum::Config cfg;
  cfg.calibration = 30;
  stats::Cusum cusum(cfg);
  sim::Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(cusum.observe(rng.normal(0.0, 1.0) * (i % 7 + 1)));
    EXPECT_EQ(cusum.alarms(), 0u);
  }
  EXPECT_TRUE(cusum.calibrated());
}

TEST(Cusum, DetectsStepShiftWithBoundedDelay) {
  // A 3-sigma step shift after a clean stationary stretch must alarm
  // within a modest number of observations (drift of z - k = 2.5 per
  // step toward h = 8 => expected delay ~4; allow noise headroom).
  constexpr int kShiftAt = 150;
  stats::Cusum::Config cfg;
  cfg.calibration = 100;
  for (uint64_t series = 0; series < 5; ++series) {
    sim::Rng rng = sim::Rng(2718).fork(series);
    stats::Cusum cusum(cfg);
    int alarm_at = -1;
    for (int i = 0; i < kShiftAt + 40; ++i) {
      const double mu = i < kShiftAt ? 5.0 : 5.0 + 3.0 * 1.5;
      if (cusum.observe(rng.normal(mu, 1.5)) && alarm_at < 0) {
        alarm_at = i;
      }
    }
    ASSERT_GE(alarm_at, kShiftAt) << "alarmed before the shift";
    EXPECT_LE(alarm_at, kShiftAt + 20) << "detection delay unbounded";
    // The alert record wants the peak statistic, not the post-reset 0.
    EXPECT_GE(cusum.stat_at_alarm(), cusum.config().h);
    // Baseline was frozen on the calibration prefix, not polluted by
    // the shifted tail.
    EXPECT_NEAR(cusum.baseline_mean(), 5.0, 1.0);
  }
}

TEST(Cusum, RearmsAfterAlarmOnPersistingShift) {
  // After an alarm the statistics reset; a persisting shift should
  // alarm again after another detection delay, not every window.
  sim::Rng rng(4242);
  stats::Cusum cusum;
  for (int i = 0; i < 100; ++i) cusum.observe(rng.normal(0.0, 1.0));
  uint64_t fired_on = 0;
  for (int i = 0; i < 60; ++i) {
    if (cusum.observe(rng.normal(4.0, 1.0))) ++fired_on;
  }
  EXPECT_GE(cusum.alarms(), 2u);
  EXPECT_EQ(fired_on, cusum.alarms());
  EXPECT_LT(fired_on, 30u) << "alarming on nearly every observation";
}

TEST(Cusum, DetectsDownwardShiftToo) {
  sim::Rng rng(555);
  stats::Cusum cusum;
  for (int i = 0; i < 100; ++i) cusum.observe(rng.normal(20.0, 3.0));
  bool fired = false;
  for (int i = 0; i < 40 && !fired; ++i) {
    fired = cusum.observe(rng.normal(11.0, 3.0));
  }
  EXPECT_TRUE(fired);
}

TEST(PageHinkley, StationaryFalseAlarmRateIsBounded) {
  // Page-Hinkley accumulates (z - delta) forever, so its false-alarm
  // behavior is governed by delta vs the residual baseline-mean error.
  // With a 100-sample calibration (se ~0.1 sigma) delta = 0.5
  // dominates the bias and the statistic stays pinned near its
  // extremum; an isolated noise excursion may still cross lambda.
  stats::PageHinkley::Config cfg;
  cfg.delta = 0.5;
  cfg.calibration = 100;
  uint64_t total = 0;
  for (uint64_t series = 0; series < 10; ++series) {
    sim::Rng rng = sim::Rng(161).fork(series);
    stats::PageHinkley ph(cfg);
    for (int i = 0; i < 1500; ++i) ph.observe(rng.normal(-3.0, 0.5));
    total += ph.alarms();
  }
  EXPECT_LE(total, 2u);
}

TEST(PageHinkley, DetectsStepShiftWithBoundedDelay) {
  constexpr int kShiftAt = 150;
  stats::PageHinkley::Config cfg;
  cfg.delta = 0.5;
  cfg.calibration = 100;
  for (uint64_t series = 0; series < 5; ++series) {
    sim::Rng rng = sim::Rng(99).fork(series);
    stats::PageHinkley ph(cfg);
    int alarm_at = -1;
    for (int i = 0; i < kShiftAt + 60; ++i) {
      const double mu = i < kShiftAt ? 0.0 : 2.0;
      if (ph.observe(rng.normal(mu, 1.0)) && alarm_at < 0) alarm_at = i;
    }
    ASSERT_GE(alarm_at, kShiftAt);
    EXPECT_LE(alarm_at, kShiftAt + 30);
    EXPECT_GE(ph.stat_at_alarm(), ph.config().lambda);
  }
}

TEST(DriftDetectors, DeterministicReplay) {
  sim::Rng rng_a(31), rng_b(31);
  stats::Cusum a, b;
  for (int i = 0; i < 500; ++i) {
    const double xa = rng_a.normal(1.0, 1.0);
    const double xb = rng_b.normal(1.0, 1.0);
    ASSERT_EQ(a.observe(xa), b.observe(xb));
    ASSERT_EQ(a.stat(), b.stat());
    ASSERT_EQ(a.alarms(), b.alarms());
  }
}

}  // namespace
