#include "tcp/recovery/recovery.h"

#include <gtest/gtest.h>

#include "tcp/recovery/prr.h"
#include "tcp/recovery/rate_halving.h"
#include "tcp/recovery/rfc3517.h"

namespace prr::tcp {
namespace {

constexpr uint32_t kMss = 1000;

RecoveryAckContext ctx(uint64_t delivered, uint64_t pipe, uint64_t cwnd) {
  RecoveryAckContext c;
  c.delivered_bytes = delivered;
  c.pipe_bytes = pipe;
  c.cwnd_bytes = cwnd;
  c.mss = kMss;
  return c;
}

TEST(Rfc3517Policy, CwndPinnedToSsthresh) {
  Rfc3517Recovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  EXPECT_EQ(p.on_ack(ctx(kMss, 15 * kMss, 20 * kMss)), 10 * kMss);
  EXPECT_EQ(p.on_ack(ctx(kMss, 5 * kMss, 10 * kMss)), 10 * kMss);
  EXPECT_EQ(p.exit_cwnd(3 * kMss, 10 * kMss), 10 * kMss);
}

TEST(Rfc3517Policy, HalfRttSilence) {
  // With pipe above cwnd the sender may transmit nothing until half the
  // window's ACKs pass: cwnd - pipe stays negative.
  Rfc3517Recovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  uint64_t pipe = 15 * kMss;
  int acks_before_first_allowance = 0;
  while (p.on_ack(ctx(kMss, pipe, 0)) <= pipe) {
    pipe -= kMss;  // each dupack drains one segment
    ++acks_before_first_allowance;
  }
  EXPECT_GE(acks_before_first_allowance, 5);
}

TEST(Rfc3517Policy, BurstWhenPipeCollapses) {
  // The RFC's problem 2: cwnd - pipe can be huge after burst losses.
  Rfc3517Recovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  const uint64_t cwnd = p.on_ack(ctx(kMss, 2 * kMss, 0));
  EXPECT_EQ(cwnd - 2 * kMss, 8 * kMss);  // 8-segment burst allowance
}

TEST(RateHalvingPolicy, DecrementsEveryOtherAck) {
  RateHalvingRecovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  // Large pipe so the pipe+1 clamp is not binding.
  uint64_t c1 = p.on_ack(ctx(kMss, 30 * kMss, 20 * kMss));
  uint64_t c2 = p.on_ack(ctx(kMss, 30 * kMss, c1));
  uint64_t c3 = p.on_ack(ctx(kMss, 30 * kMss, c2));
  uint64_t c4 = p.on_ack(ctx(kMss, 30 * kMss, c3));
  EXPECT_EQ(c1, 20 * kMss);  // odd ack: no decrement
  EXPECT_EQ(c2, 19 * kMss);
  EXPECT_EQ(c3, 19 * kMss);
  EXPECT_EQ(c4, 18 * kMss);
}

TEST(RateHalvingPolicy, ClampsToPipePlusOne) {
  RateHalvingRecovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  EXPECT_EQ(p.on_ack(ctx(kMss, 5 * kMss, 20 * kMss)), 6 * kMss);
}

TEST(RateHalvingPolicy, NeverDecrementsBelowSsthreshByHalving) {
  RateHalvingRecovery p;
  p.on_enter(20 * kMss, 10 * kMss, 12 * kMss, kMss);
  uint64_t cwnd = 12 * kMss;
  for (int i = 0; i < 50; ++i) cwnd = p.on_ack(ctx(kMss, 30 * kMss, cwnd));
  EXPECT_EQ(cwnd, 10 * kMss);  // floor at ssthresh (clamp not binding)
}

TEST(RateHalvingPolicy, ExitKeepsSmallWindow) {
  // The paper's core complaint: Linux exits recovery at pipe + 1.
  RateHalvingRecovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  p.on_ack(ctx(kMss, 1 * kMss, 20 * kMss));
  EXPECT_EQ(p.exit_cwnd(1 * kMss, 2 * kMss), 2 * kMss);
}

TEST(PrrPolicy, CwndIsPipePlusSndcnt) {
  PrrRecovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  // Byte-exact: first delivery of 1000 allows 500 (ratio 1/2) — not yet
  // a whole segment, so a quantizing sender holds back.
  const uint64_t cwnd = p.on_ack(ctx(kMss, 15 * kMss, 20 * kMss));
  EXPECT_EQ(cwnd, 15 * kMss + kMss / 2);
  // Second delivery: allowance reaches one full segment.
  const uint64_t cwnd2 = p.on_ack(ctx(kMss, 15 * kMss, cwnd));
  EXPECT_EQ(cwnd2, 16 * kMss);
  p.on_sent(kMss);
  const uint64_t cwnd3 = p.on_ack(ctx(kMss, 15 * kMss, cwnd2));
  EXPECT_EQ(cwnd3, 15 * kMss + kMss / 2);  // back to the half allowance
}

TEST(PrrPolicy, ExitAtSsthresh) {
  PrrRecovery p;
  p.on_enter(20 * kMss, 10 * kMss, 20 * kMss, kMss);
  EXPECT_EQ(p.exit_cwnd(2 * kMss, 3 * kMss), 10 * kMss);
}

TEST(PrrPolicy, NamesReflectBound) {
  EXPECT_EQ(PrrRecovery(core::ReductionBound::kSlowStart).name(), "prr");
  EXPECT_EQ(PrrRecovery(core::ReductionBound::kConservative).name(),
            "prr-crb");
  EXPECT_EQ(PrrRecovery(core::ReductionBound::kUnlimited).name(), "prr-ub");
}

TEST(PolicyFactory, MakesEachKind) {
  EXPECT_EQ(make_recovery_policy(RecoveryKind::kRfc3517)->name(), "rfc3517");
  EXPECT_EQ(make_recovery_policy(RecoveryKind::kLinuxRateHalving)->name(),
            "linux");
  EXPECT_EQ(make_recovery_policy(RecoveryKind::kPrr)->name(), "prr");
}

// Cross-policy property: on the same smooth drain (one delivered segment
// per ack, sends refill pipe), every policy's cwnd converges into
// [ssthresh-1, ssthresh+1] by the time the window's ACKs are exhausted.
class PolicyConvergence
    : public ::testing::TestWithParam<RecoveryKind> {};

TEST_P(PolicyConvergence, ConvergesNearSsthreshUnderLightLoss) {
  auto policy = make_recovery_policy(GetParam());
  const uint64_t flight = 20 * kMss, ssthresh = 10 * kMss;
  policy->on_enter(flight, ssthresh, flight, kMss);
  uint64_t pipe = 19 * kMss;  // one segment lost
  uint64_t cwnd = flight;
  for (int i = 0; i < 19; ++i) {
    cwnd = policy->on_ack(ctx(kMss, pipe, cwnd));
    if (cwnd > pipe) {
      const uint64_t sent = cwnd - pipe;
      policy->on_sent(sent);
      pipe += sent;
    }
    pipe -= kMss;  // the next ack drains one
  }
  const uint64_t exit = policy->exit_cwnd(pipe, cwnd);
  EXPECT_GE(exit, ssthresh - kMss);
  EXPECT_LE(exit, ssthresh + kMss);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyConvergence,
                         ::testing::Values(RecoveryKind::kRfc3517,
                                           RecoveryKind::kLinuxRateHalving,
                                           RecoveryKind::kPrr));

}  // namespace
}  // namespace prr::tcp
