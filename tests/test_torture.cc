// The torture engine end to end: grammar determinism, the oracle
// catalog (progress watchdog, termination, conservation), repro
// round-tripping, the delta-debugging shrinker, the cross-arm
// differential, and campaign/replay determinism (same seeds -> byte
// identical artifacts).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "torture/campaign.h"
#include "torture/oracles.h"
#include "torture/pathology.h"
#include "torture/repro.h"
#include "torture/shrink.h"
#include "workload/web_workload.h"

namespace prr::torture {
namespace {

using namespace prr::sim::literals;

http::ResponseSpec resp(uint64_t bytes) {
  http::ResponseSpec r;
  r.bytes = bytes;
  return r;
}

// ---- pathology grammar ----

TEST(Pathology, DrawIsPureInProfileAndRng) {
  PathologyProfile p = PathologyProfile::standard();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    PathologyDraw a = p.draw(sim::Rng(seed));
    PathologyDraw b = p.draw(sim::Rng(seed));
    EXPECT_EQ(a.renege_at.ns(), b.renege_at.ns());
    EXPECT_EQ(a.ack_loss_prob, b.ack_loss_prob);
    EXPECT_EQ(a.ack_stretch, b.ack_stretch);
    EXPECT_EQ(a.misbehavior.lie_sack_probability,
              b.misbehavior.lie_sack_probability);
    EXPECT_EQ(a.misbehavior.shrink_at.ns(), b.misbehavior.shrink_at.ns());
    EXPECT_EQ(a.misbehavior.corrupt_probability,
              b.misbehavior.corrupt_probability);
    EXPECT_EQ(a.faults.events().size(), b.faults.events().size());
  }
}

TEST(Pathology, FamiliesDrawIndependently) {
  // One bernoulli + sub-draw block per family regardless of activation:
  // disabling one family never perturbs another family's draw.
  PathologyProfile full = PathologyProfile::standard();
  PathologyProfile no_renege = full;
  no_renege.p_renege = 0.0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    PathologyDraw a = full.draw(sim::Rng(seed));
    PathologyDraw b = no_renege.draw(sim::Rng(seed));
    EXPECT_TRUE(b.renege_at.is_zero());
    // Every other family's outcome is untouched by the change.
    EXPECT_EQ(a.misbehavior.lie_sack_probability,
              b.misbehavior.lie_sack_probability);
    EXPECT_EQ(a.misbehavior.divide_factor, b.misbehavior.divide_factor);
    EXPECT_EQ(a.misbehavior.shrink_at.ns(), b.misbehavior.shrink_at.ns());
    EXPECT_EQ(a.ack_loss_prob, b.ack_loss_prob);
    EXPECT_EQ(a.faults.events().size(), b.faults.events().size());
  }
}

TEST(Pathology, SingleFamilyProfilesActivateOnlyTheirFamily) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    PathologyDraw d = PathologyProfile::only_shrink().draw(sim::Rng(seed));
    EXPECT_TRUE(d.renege_at.is_zero());
    EXPECT_EQ(d.misbehavior.lie_sack_probability, 0.0);
    EXPECT_EQ(d.misbehavior.corrupt_probability, 0.0);
    if (!d.misbehavior.shrink_duration.is_zero()) {
      EXPECT_GE(d.misbehavior.shrink_rwnd_bytes, 1u);
    }
  }
}

TEST(Pathology, ApplyLayersOntoBaseSampleWithoutClobberingIt) {
  workload::ConnectionSample base;
  base.responses = {resp(10'000)};
  base.ack_loss_prob = 0.01;
  workload::ConnectionSample s = base;
  PathologyDraw d;
  d.renege_at = 700_ms;
  d.misbehavior.corrupt_probability = 0.5;
  d.apply(s);
  EXPECT_EQ(s.renege_at.ns(), (700_ms).ns());
  EXPECT_EQ(s.misbehavior.corrupt_probability, 0.5);
  // Untouched knobs keep the base sample's values.
  EXPECT_EQ(s.ack_loss_prob, 0.01);
  ASSERT_EQ(s.responses.size(), 1u);
  EXPECT_EQ(s.responses[0].bytes, 10'000u);
}

// ---- repro round-trip ----

ReproCase busy_case() {
  ReproCase c;
  c.name = "round-trip";
  c.arm = "RFC 3517";
  c.seed = 99;
  c.connection = 3;
  c.limit = 120_s;
  c.watchdog_rto_backoffs = 5;
  c.max_rto_backoffs = 9;
  c.renege_recovery = false;
  c.sample.rtt = 37_ms;
  c.sample.bandwidth = util::DataRate::mbps(2.5);
  c.sample.loss.p_good_to_bad = 0.0123456789012345;
  c.sample.outages = true;
  c.sample.ack_loss_prob = 0.07;
  c.sample.ack_stretch = 3;
  c.sample.renege_at = 812_ms;
  c.sample.misbehavior.lie_sack_probability = 0.031;
  c.sample.misbehavior.shrink_at = 400_ms;
  c.sample.misbehavior.shrink_duration = 2_s;
  c.sample.misbehavior.divide_factor = 4;
  c.sample.faults.add({1_s, net::FaultKind::kBlackout, 300_ms});
  c.sample.faults.add({3_s, net::FaultKind::kRttSpike, 500_ms, 4.0});
  c.sample.responses = {resp(50'000), resp(20'000)};
  c.sample.responses[1].gap_before = 50_ms;
  c.sample.responses[1].chunk_bytes = 4000;
  c.expect = {"no_forward_progress", "not_terminated"};
  return c;
}

TEST(Repro, TextRoundTripIsExact) {
  ReproCase c = busy_case();
  std::string text = to_text(c);
  ReproCase back;
  std::string err;
  ASSERT_TRUE(from_text(text, back, &err)) << err;
  // A second serialization must be byte-identical — the property the
  // corpus and the shrinker depend on.
  EXPECT_EQ(to_text(back), text);
  EXPECT_EQ(back.arm, "RFC 3517");
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.connection, 3u);
  EXPECT_FALSE(back.renege_recovery);
  EXPECT_EQ(back.sample.loss.p_good_to_bad, c.sample.loss.p_good_to_bad);
  EXPECT_EQ(back.sample.misbehavior.shrink_at.ns(),
            c.sample.misbehavior.shrink_at.ns());
  ASSERT_EQ(back.sample.faults.events().size(), 2u);
  EXPECT_EQ(back.sample.faults.events()[1].scale, 4.0);
  ASSERT_EQ(back.sample.responses.size(), 2u);
  EXPECT_EQ(back.sample.responses[1].chunk_bytes, 4000u);
  EXPECT_EQ(back.expect, c.expect);
}

TEST(Repro, MalformedInputIsRejectedWithLineNumbers) {
  ReproCase out;
  std::string err;
  EXPECT_FALSE(from_text("not a repro\n", out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(from_text("prr-repro v1\nbogus_key = 3\n", out, &err));
  EXPECT_NE(err.find("2"), std::string::npos) << err;
}

TEST(Repro, SaveLoadRoundTrips) {
  ReproCase c = busy_case();
  std::string path = ::testing::TempDir() + "/round-trip.repro";
  std::string err;
  ASSERT_TRUE(save_repro(c, path, &err)) << err;
  ReproCase back;
  ASSERT_TRUE(load_repro(path, back, &err)) << err;
  EXPECT_EQ(to_text(back), to_text(c));
  std::remove(path.c_str());
}

// ---- oracles, exercised through real repro runs ----

TEST(Oracles, CleanConnectionTripsNothing) {
  ReproCase c;
  c.name = "clean";
  c.sample.responses = {resp(100'000)};
  exp::ReplayResult r = run_repro(c);
  EXPECT_TRUE(r.all_acked);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_GT(r.acks_checked, 0u);
}

TEST(Oracles, ZeroWindowDeadlockIsReportedAsNoTermination) {
  // Defense off + permanently shrunk window: the event queue drains with
  // the flow unfinished — the exact deadlock the termination oracle is
  // for. With the defense on, the persist probes keep the flow alive.
  // The shrink window is finite, but that cannot save a prober-less
  // sender: once it stalls with nothing in flight, no ACK ever arrives
  // to report the reopened window.
  ReproCase c;
  c.name = "deadlock";
  c.zero_window_probes = false;
  c.sample.misbehavior.shrink_at = 400_ms;
  c.sample.misbehavior.shrink_duration = 5_s;
  c.sample.responses = {resp(400 * 1430)};
  exp::ReplayResult r = run_repro(c);
  EXPECT_FALSE(r.all_acked);
  bool no_termination = false;
  for (const auto& v : r.violations)
    if (v.kind == tcp::InvariantKind::kNoTermination) no_termination = true;
  EXPECT_TRUE(no_termination);

  // With probes on, the probe's ACK reports the restored window after
  // the shrink ends and the flow completes.
  c.zero_window_probes = true;
  exp::ReplayResult healthy = run_repro(c);
  EXPECT_TRUE(healthy.all_acked) << "window probes should rescue the flow";
  EXPECT_TRUE(healthy.violations.empty());
}

TEST(Oracles, RenegingWedgeIsReportedAsNoForwardProgress) {
  ReproCase c;
  std::string err;
  ASSERT_TRUE(load_repro(std::string(PRR_CORPUS_DIR) + "/reneging-wedge.repro",
                         c, &err))
      << err;
  exp::ReplayResult r = run_repro(c);
  bool stuck = false;
  for (const auto& v : r.violations)
    if (v.kind == tcp::InvariantKind::kNoForwardProgress) stuck = true;
  EXPECT_TRUE(stuck);

  // The defense (RFC 2018 reneging recovery) eliminates the wedge.
  c.renege_recovery = true;
  exp::ReplayResult healthy = run_repro(c);
  for (const auto& v : healthy.violations)
    ADD_FAILURE() << "[" << tcp::to_string(v.kind) << "] " << v.detail;
}

TEST(Oracles, HonestDeepBackoffIsNotFlagged) {
  // A long blackout causes consecutive RTO backoffs with zero progress —
  // but the path being down (and the sender retransmitting into it) must
  // not look like a wedge. Zero false positives on an honest stall.
  ReproCase c;
  c.name = "blackout";
  c.sample.faults.add({500_ms, net::FaultKind::kBlackout, 20_s});
  c.sample.responses = {resp(200 * 1430)};
  c.limit = 120_s;
  exp::ReplayResult r = run_repro(c);
  for (const auto& v : r.violations)
    ADD_FAILURE() << "[" << tcp::to_string(v.kind) << "] " << v.detail;
}

// ---- shrinker ----

TEST(Shrink, StripsEveryDecoyAndKeepsTheSignature) {
  // The deadlock case plus decoys the failure does not need: extra
  // responses, a lying-SACK pathology, a fault event, ACK loss. The
  // shrinker must remove all of them and still reproduce.
  ReproCase c;
  c.name = "decoys";
  c.zero_window_probes = false;
  c.sample.misbehavior.shrink_at = 400_ms;
  c.sample.misbehavior.shrink_duration = 3600_s;
  c.sample.misbehavior.lie_sack_probability = 0.02;  // decoy
  c.sample.ack_loss_prob = 0.05;                     // decoy
  c.sample.faults.add({2_s, net::FaultKind::kRttSpike, 200_ms, 3.0});
  c.sample.responses = {resp(400 * 1430), resp(100 * 1430)};  // 2nd: decoy

  ShrinkResult sr = shrink(c);
  ASSERT_TRUE(sr.input_reproduced);
  EXPECT_GT(sr.accepted, 0);
  const ReproCase& m = sr.minimized;
  EXPECT_EQ(m.sample.misbehavior.lie_sack_probability, 0.0);
  EXPECT_EQ(m.sample.ack_loss_prob, 0.0);
  EXPECT_TRUE(m.sample.faults.events().empty());
  EXPECT_EQ(m.sample.responses.size(), 1u);
  // The load-bearing pathology survives, and the minimized case still
  // exhibits the signature.
  EXPECT_FALSE(m.sample.misbehavior.shrink_duration.is_zero());
  EXPECT_TRUE(repro_reproduced(m, run_repro(m)));
}

TEST(Shrink, NonReproducingInputIsReturnedUnchanged) {
  ReproCase c;
  c.name = "healthy";
  c.sample.responses = {resp(20'000)};
  c.expect = {"no_termination"};  // never happens
  ShrinkResult sr = shrink(c);
  EXPECT_FALSE(sr.input_reproduced);
  EXPECT_EQ(sr.accepted, 0);
  EXPECT_EQ(to_text(sr.minimized), to_text(c));
}

TEST(Shrink, DerivesSignatureWhenExpectIsEmpty) {
  ReproCase c;
  c.name = "derive";
  c.zero_window_probes = false;
  c.sample.misbehavior.shrink_at = 400_ms;
  c.sample.misbehavior.shrink_duration = 3600_s;
  c.sample.responses = {resp(400 * 1430)};
  c.expect.clear();
  ShrinkResult sr = shrink(c);
  ASSERT_TRUE(sr.input_reproduced);
  EXPECT_FALSE(sr.minimized.expect.empty());
}

// ---- cross-arm differential ----

exp::ArmResult outcome_arm(const char* name,
                           std::vector<exp::ConnOutcome> outcomes) {
  exp::ArmResult r;
  r.name = name;
  r.outcomes = std::move(outcomes);
  return r;
}

exp::ConnOutcome finished(uint64_t id, uint64_t bytes) {
  exp::ConnOutcome o;
  o.id = id;
  o.expected_bytes = bytes;
  o.delivered_bytes = bytes;
  o.all_acked = true;
  o.app_finished = true;
  return o;
}

TEST(DiffOutcomes, IdenticalDeliveryIsClean) {
  std::vector<exp::ArmResult> arms;
  arms.push_back(outcome_arm("PRR", {finished(0, 1000), finished(1, 2000)}));
  arms.push_back(
      outcome_arm("RFC 3517", {finished(0, 1000), finished(1, 2000)}));
  EXPECT_TRUE(diff_outcomes(arms).empty());
}

TEST(DiffOutcomes, ShortDeliveryOnOneArmIsFlagged) {
  exp::ConnOutcome bad = finished(1, 2000);
  bad.delivered_bytes = 1500;  // claims completion, delivered short
  std::vector<exp::ArmResult> arms;
  arms.push_back(outcome_arm("PRR", {finished(0, 1000), finished(1, 2000)}));
  arms.push_back(outcome_arm("RFC 3517", {finished(0, 1000), bad}));
  std::vector<Divergence> d = diff_outcomes(arms);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].connection, 1u);
  EXPECT_EQ(d[0].arm, "RFC 3517");
  EXPECT_EQ(d[0].kind, "delivered_mismatch");
}

TEST(DiffOutcomes, HungConnectionIsFlaggedAndCleanAbortIsNot) {
  exp::ConnOutcome hung = finished(0, 1000);
  hung.all_acked = false;
  hung.app_finished = false;
  hung.aborted = false;
  hung.delivered_bytes = 400;
  exp::ConnOutcome aborted = hung;
  aborted.aborted = true;
  std::vector<exp::ArmResult> arms;
  arms.push_back(outcome_arm("PRR", {hung}));
  arms.push_back(outcome_arm("RFC 3517", {aborted}));
  std::vector<Divergence> d = diff_outcomes(arms);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].arm, "PRR");
  EXPECT_EQ(d[0].kind, "not_terminated");
}

// ---- campaign determinism ----

CampaignConfig smoke_config() {
  CampaignConfig cfg;
  cfg.seeds = 4;
  cfg.connections_per_seed = 3;
  cfg.per_connection_limit = 120_s;
  cfg.shrink_failures = false;
  return cfg;
}

TEST(Campaign, SummaryIsByteIdenticalAcrossRunsAndThreadCounts) {
  workload::WebWorkload base;
  CampaignConfig cfg = smoke_config();
  CampaignResult a = run_campaign(base, cfg);
  CampaignResult b = run_campaign(base, cfg);
  EXPECT_EQ(a.summary_json(), b.summary_json());
  cfg.threads = 4;
  CampaignResult c = run_campaign(base, cfg);
  EXPECT_EQ(a.summary_json(), c.summary_json());
  EXPECT_EQ(a.seeds_run, 4);
  EXPECT_GT(a.acks_checked, 0u);
}

TEST(Campaign, DefensesOnFindsNothingOnTheSmokeRange) {
  // The acceptance property CI's smoke job relies on: the shipped
  // defenses survive the standard pathology mix.
  workload::WebWorkload base;
  CampaignResult r = run_campaign(base, smoke_config());
  for (const auto& f : r.failures) ADD_FAILURE() << f.summary;
  EXPECT_FALSE(r.truncated_by_budget);
}

// ---- replay determinism (quarantine -> replay round trip) ----

TEST(Replay, InjectedQuarantineReplaysByteIdentically) {
  // Inject a synthetic violation so a quarantine record materializes,
  // then replay it twice: the replay must reproduce the original failure
  // and be deterministic down to the trace tail.
  workload::WebWorkload base;
  TorturePopulation pop(base, PathologyProfile::standard());
  exp::RunOptions opts;
  opts.connections = 3;
  opts.seed = 11;
  opts.per_connection_limit = 120_s;
  opts.check_invariants = true;
  opts.torture_oracles = true;
  opts.inject_violation_connection = 1;
  opts.inject_violation_on_ack = 5;
  exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::ArmResult res = exp::run_arm(pop, arm, opts);
  ASSERT_EQ(res.quarantined.size(), 1u);
  const exp::QuarantineRecord& rec = res.quarantined[0];
  EXPECT_EQ(rec.connection_id, 1u);
  EXPECT_EQ(rec.seed, 11u);

  exp::Experiment ex(pop, opts);
  exp::ReplayResult r1 = ex.replay(arm, rec);
  exp::ReplayResult r2 = ex.replay(arm, rec);
  EXPECT_TRUE(r1.reproduced(rec));
  ASSERT_EQ(r1.violations.size(), r2.violations.size());
  for (size_t i = 0; i < r1.violations.size(); ++i) {
    EXPECT_EQ(r1.violations[i].kind, r2.violations[i].kind);
    EXPECT_EQ(r1.violations[i].at.ns(), r2.violations[i].at.ns());
    EXPECT_EQ(r1.violations[i].detail, r2.violations[i].detail);
  }
  EXPECT_EQ(r1.acks_checked, r2.acks_checked);
  ASSERT_EQ(r1.trace_tail.size(), r2.trace_tail.size());
  for (size_t i = 0; i < r1.trace_tail.size(); ++i) {
    EXPECT_EQ(r1.trace_tail[i].at_ns, r2.trace_tail[i].at_ns);
    EXPECT_EQ(r1.trace_tail[i].type, r2.trace_tail[i].type);
    EXPECT_EQ(r1.trace_tail[i].a, r2.trace_tail[i].a);
    EXPECT_EQ(r1.trace_tail[i].b, r2.trace_tail[i].b);
  }
  // The original run's violation matches what the replay saw (the exact
  // seed + trace-geometry propagation satellite): same kind, same time.
  ASSERT_FALSE(rec.violations.empty());
  ASSERT_FALSE(r1.violations.empty());
  EXPECT_EQ(rec.violations[0].kind, r1.violations[0].kind);
  EXPECT_EQ(rec.violations[0].at.ns(), r1.violations[0].at.ns());
}

}  // namespace
}  // namespace prr::torture
