#include "tcp/rto.h"

#include <gtest/gtest.h>

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

TEST(Rto, InitialRtoBeforeAnySample) {
  RtoEstimator rto;
  EXPECT_FALSE(rto.has_sample());
  EXPECT_EQ(rto.rto().ms(), 1000);
}

TEST(Rto, FirstSampleInitializesSrttAndVar) {
  RtoEstimator rto;
  rto.on_rtt_sample(100_ms);
  EXPECT_EQ(rto.srtt().ms(), 100);
  EXPECT_EQ(rto.rttvar().ms(), 50);
  // RTO = srtt + 4*rttvar = 300 ms.
  EXPECT_EQ(rto.rto().ms(), 300);
}

TEST(Rto, ConvergesOnSteadyRtt) {
  RtoEstimator rto;
  for (int i = 0; i < 100; ++i) rto.on_rtt_sample(100_ms);
  EXPECT_NEAR(rto.srtt().ms_d(), 100, 1);
  // rttvar decays toward 0, so the min_rto floor binds.
  EXPECT_EQ(rto.rto().ms(), 200);
}

TEST(Rto, MinRtoFloorApplies) {
  RtoEstimator::Config cfg;
  cfg.min_rto = 200_ms;
  RtoEstimator rto(cfg);
  for (int i = 0; i < 50; ++i) rto.on_rtt_sample(10_ms);
  EXPECT_EQ(rto.rto().ms(), 200);
}

TEST(Rto, BackoffDoubles) {
  RtoEstimator rto;
  for (int i = 0; i < 20; ++i) rto.on_rtt_sample(100_ms);
  const auto base = rto.rto();
  rto.backoff();
  EXPECT_EQ(rto.rto().ns(), base.ns() * 2);
  rto.backoff();
  EXPECT_EQ(rto.rto().ns(), base.ns() * 4);
  EXPECT_EQ(rto.backoff_count(), 2);
}

TEST(Rto, BackoffCapsAtMax) {
  RtoEstimator::Config cfg;
  cfg.max_rto = 10_s;
  RtoEstimator rto(cfg);
  rto.on_rtt_sample(100_ms);
  for (int i = 0; i < 30; ++i) rto.backoff();
  EXPECT_EQ(rto.rto().ms(), 10'000);
}

TEST(Rto, ResetBackoffRestoresBase) {
  RtoEstimator rto;
  rto.on_rtt_sample(100_ms);
  const auto base = rto.rto();
  rto.backoff();
  rto.backoff();
  rto.reset_backoff();
  EXPECT_EQ(rto.rto().ns(), base.ns());
  EXPECT_EQ(rto.backoff_count(), 0);
}

TEST(Rto, VariableRttRaisesRto) {
  RtoEstimator rto;
  rto.on_rtt_sample(100_ms);
  for (int i = 0; i < 20; ++i) {
    rto.on_rtt_sample(i % 2 == 0 ? 50_ms : 150_ms);
  }
  // High variance keeps RTO well above srtt.
  EXPECT_GT(rto.rto().ms(), rto.srtt().ms() + 100);
}

TEST(Rto, EwmaTracksShiftInRtt) {
  RtoEstimator rto;
  for (int i = 0; i < 50; ++i) rto.on_rtt_sample(100_ms);
  for (int i = 0; i < 200; ++i) rto.on_rtt_sample(300_ms);
  EXPECT_NEAR(rto.srtt().ms_d(), 300, 5);
}

}  // namespace
}  // namespace prr::tcp
