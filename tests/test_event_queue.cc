#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace prr::sim {
namespace {

using namespace prr::sim::literals;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_ms, [&] { order.push_back(3); });
  q.schedule(10_ms, [&] { order.push_back(1); });
  q.schedule(20_ms, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(1_ms, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1_ms, [&] { order.push_back(1); });
  EventId id = q.schedule(2_ms, [&] { order.push_back(2); });
  q.schedule(3_ms, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(9999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
  q.schedule(7_ms, [] {});
  q.schedule(3_ms, [] {});
  EXPECT_EQ(q.next_time().ms(), 3);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(42_ms, [] {});
  EXPECT_EQ(q.run_next().ms(), 42);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(Time::milliseconds(count), chain);
  };
  q.schedule(0_ms, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  q.schedule(1_ms, [] {});
  EventId id = q.schedule(2_ms, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancellingFiredIdRetainsNothing) {
  // Regression: cancel() of an already-fired id used to park the id in
  // the cancellation set forever, growing memory without bound in timer-
  // heavy runs and skewing size() downward.
  EventQueue q;
  EventId id = q.schedule(1_ms, [] {});
  q.run_next();  // fires `id`
  EXPECT_EQ(q.size(), 0u);
  q.cancel(id);  // must be a true no-op
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());

  // size() stays exact with live events around the stale cancel.
  q.schedule(2_ms, [] {});
  q.cancel(id);  // still fired, still a no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_next().ms(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancellingUnissuedAndRepeatIdsRetainsNothing) {
  EventQueue q;
  // Ids the queue never issued (>= next id) must not be recorded either:
  // they would otherwise suppress a future event when the id is reused.
  for (EventId bogus = 1; bogus < 100; ++bogus) q.cancel(bogus);
  bool fired = false;
  q.schedule(1_ms, [&] { fired = true; });  // gets id 1
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_TRUE(fired);

  // Double-cancel of a pending id: second is a no-op, size() stays exact.
  EventId id = q.schedule(2_ms, [] {});
  q.schedule(3_ms, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_next().ms(), 3);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace prr::sim
