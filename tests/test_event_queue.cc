#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

namespace prr::sim {
namespace {

using namespace prr::sim::literals;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_ms, [&] { order.push_back(3); });
  q.schedule(10_ms, [&] { order.push_back(1); });
  q.schedule(20_ms, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(1_ms, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1_ms, [&] { order.push_back(1); });
  EventId id = q.schedule(2_ms, [&] { order.push_back(2); });
  q.schedule(3_ms, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(9999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
  q.schedule(7_ms, [] {});
  q.schedule(3_ms, [] {});
  EXPECT_EQ(q.next_time().ms(), 3);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(42_ms, [] {});
  EXPECT_EQ(q.run_next().ms(), 42);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(Time::milliseconds(count), chain);
  };
  q.schedule(0_ms, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  q.schedule(1_ms, [] {});
  EventId id = q.schedule(2_ms, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancellingFiredIdRetainsNothing) {
  // Regression: cancel() of an already-fired id used to park the id in
  // the cancellation set forever, growing memory without bound in timer-
  // heavy runs and skewing size() downward.
  EventQueue q;
  EventId id = q.schedule(1_ms, [] {});
  q.run_next();  // fires `id`
  EXPECT_EQ(q.size(), 0u);
  q.cancel(id);  // must be a true no-op
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());

  // size() stays exact with live events around the stale cancel.
  q.schedule(2_ms, [] {});
  q.cancel(id);  // still fired, still a no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_next().ms(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancellingUnissuedAndRepeatIdsRetainsNothing) {
  EventQueue q;
  // Ids the queue never issued (bogus generations/indices) must not be
  // recorded either: they would otherwise suppress a future event when
  // the slot is used.
  for (EventId bogus = 1; bogus < 100; ++bogus) q.cancel(bogus);
  bool fired = false;
  q.schedule(1_ms, [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_TRUE(fired);

  // Double-cancel of a pending id: second is a no-op, size() stays exact.
  EventId id = q.schedule(2_ms, [] {});
  q.schedule(3_ms, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.run_next().ms(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdOnRecycledSlotIsNoop) {
  // The first event's slot is recycled by the second schedule. The old
  // id must not be able to cancel the new occupant: the generation tag
  // makes it a true no-op.
  EventQueue q;
  EventId old_id = q.schedule(1_ms, [] {});
  q.run_next();  // fires; slot goes back on the free list
  bool fired = false;
  EventId new_id = q.schedule(2_ms, [&] { fired = true; });
  ASSERT_NE(old_id, new_id);  // same slot, new generation
  q.cancel(old_id);           // stale id, recycled slot: no-op
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_TRUE(fired);

  // Same via cancel-driven recycling.
  EventId a = q.schedule(3_ms, [] {});
  q.cancel(a);
  bool b_fired = false;
  EventId b = q.schedule(4_ms, [&] { b_fired = true; });
  q.cancel(a);  // stale again
  EXPECT_EQ(q.size(), 1u);
  q.run_next();
  EXPECT_TRUE(b_fired);
  // Stale reschedule is equally inert.
  EXPECT_EQ(q.reschedule(b, 9_ms), kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEventAndInvalidatesOldId) {
  EventQueue q;
  std::vector<int> order;
  EventId id = q.schedule(10_ms, [&] { order.push_back(1); });
  q.schedule(5_ms, [&] { order.push_back(2); });
  EventId moved = q.reschedule(id, 1_ms);
  ASSERT_NE(moved, kInvalidEventId);
  q.cancel(id);  // old id is dead; must not cancel the moved event
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RescheduleKeepsFifoParityWithCancelPlusSchedule) {
  // A rescheduled event consumes a fresh sequence number, so among
  // equal-time events it fires exactly where a cancel+schedule pair
  // would have placed it: after events scheduled before the reschedule.
  EventQueue q;
  std::vector<int> order;
  EventId id = q.schedule(9_ms, [&] { order.push_back(0); });
  q.schedule(5_ms, [&] { order.push_back(1); });
  q.reschedule(id, 5_ms);
  q.schedule(5_ms, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

// Differential test: the slot-map queue against a naive sorted-vector
// model, through a long randomized schedule/cancel/reschedule/run
// workload including stale ids and equal-time groups.
TEST(EventQueue, RandomizedDifferentialAgainstNaiveModel) {
  struct ModelEvent {
    int64_t at_ms;
    uint64_t seq;
    int tag;
  };
  std::mt19937_64 rng(20110501);
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    std::vector<ModelEvent> model;  // unordered; popped by (at, seq)
    uint64_t next_seq = 1;
    // Live (queue id, model seq) pairs plus retired ids for stale probes.
    std::vector<std::pair<EventId, uint64_t>> live;
    std::vector<EventId> stale;
    std::vector<int> queue_fired, model_fired;
    int next_tag = 0;

    auto model_pop = [&]() {
      std::size_t best = 0;
      for (std::size_t i = 1; i < model.size(); ++i) {
        if (model[i].at_ms < model[best].at_ms ||
            (model[i].at_ms == model[best].at_ms &&
             model[i].seq < model[best].seq)) {
          best = i;
        }
      }
      ModelEvent e = model[best];
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(best));
      return e;
    };

    for (int step = 0; step < 400; ++step) {
      const uint64_t action = rng() % 100;
      if (action < 45 || live.empty()) {
        // Schedule. Times collide on purpose (mod 16) to exercise FIFO.
        const int64_t at_ms = static_cast<int64_t>(rng() % 16);
        const int tag = next_tag++;
        EventId id = q.schedule(Time::milliseconds(at_ms),
                                [&queue_fired, tag] {
                                  queue_fired.push_back(tag);
                                });
        model.push_back({at_ms, next_seq, tag});
        live.emplace_back(id, next_seq);
        ++next_seq;
      } else if (action < 60) {
        // Cancel a live event.
        const std::size_t i = rng() % live.size();
        q.cancel(live[i].first);
        stale.push_back(live[i].first);
        const uint64_t seq = live[i].second;
        std::erase_if(model, [seq](const ModelEvent& e) {
          return e.seq == seq;
        });
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (action < 72) {
        // Reschedule a live event: same tag, new time, fresh seq.
        const std::size_t i = rng() % live.size();
        const int64_t at_ms = static_cast<int64_t>(rng() % 16);
        EventId moved = q.reschedule(live[i].first, Time::milliseconds(at_ms));
        ASSERT_NE(moved, kInvalidEventId);
        stale.push_back(live[i].first);
        for (auto& e : model) {
          if (e.seq == live[i].second) {
            e.at_ms = at_ms;
            e.seq = next_seq;
          }
        }
        live[i] = {moved, next_seq};
        ++next_seq;
      } else if (action < 82 && !stale.empty()) {
        // Poke with stale ids: cancel and reschedule must both no-op.
        const EventId id = stale[rng() % stale.size()];
        q.cancel(id);
        EXPECT_EQ(q.reschedule(id, Time::milliseconds(1)), kInvalidEventId);
      } else if (!q.empty()) {
        // Run the earliest event; drop it from the live set.
        const Time t = q.run_next();
        const ModelEvent e = model_pop();
        model_fired.push_back(e.tag);
        EXPECT_EQ(t.ms(), e.at_ms);
        std::erase_if(live, [&](const auto& p) { return p.second == e.seq; });
      }
      ASSERT_EQ(q.size(), model.size());
      ASSERT_EQ(q.empty(), model.empty());
      if (!model.empty()) {
        int64_t best = model[0].at_ms;
        for (const auto& e : model) best = std::min(best, e.at_ms);
        ASSERT_EQ(q.next_time().ms(), best);
      } else {
        ASSERT_TRUE(q.next_time().is_infinite());
      }
    }
    // Drain.
    while (!q.empty()) {
      const Time t = q.run_next();
      const ModelEvent e = model_pop();
      model_fired.push_back(e.tag);
      EXPECT_EQ(t.ms(), e.at_ms);
    }
    EXPECT_EQ(queue_fired, model_fired);
  }
}

}  // namespace
}  // namespace prr::sim
