#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace prr::sim {
namespace {

using namespace prr::sim::literals;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_ms, [&] { order.push_back(3); });
  q.schedule(10_ms, [&] { order.push_back(1); });
  q.schedule(20_ms, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(1_ms, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1_ms, [&] { order.push_back(1); });
  EventId id = q.schedule(2_ms, [&] { order.push_back(2); });
  q.schedule(3_ms, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelInvalidIsNoop) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(9999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeReflectsEarliest) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
  q.schedule(7_ms, [] {});
  q.schedule(3_ms, [] {});
  EXPECT_EQ(q.next_time().ms(), 3);
}

TEST(EventQueue, RunNextReturnsEventTime) {
  EventQueue q;
  q.schedule(42_ms, [] {});
  EXPECT_EQ(q.run_next().ms(), 42);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(Time::milliseconds(count), chain);
  };
  q.schedule(0_ms, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  q.schedule(1_ms, [] {});
  EventId id = q.schedule(2_ms, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace prr::sim
