// Tail loss probe (extension, §8 future work / RFC 8985): converts
// tail-loss timeouts of short flows into probe-triggered fast recovery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/sender.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

struct Sent {
  uint64_t seq;
  uint32_t len;
  bool retx;
};

class TlpTest : public ::testing::Test {
 protected:
  void make(bool tlp) {
    SenderConfig cfg;
    cfg.mss = kMss;
    cfg.cc = CcKind::kNewReno;
    cfg.tail_loss_probe = tlp;
    cfg.handshake_rtt = 100_ms;
    wire.clear();
    sender = std::make_unique<Sender>(
        sim, cfg,
        [this](net::Segment s) {
          wire.push_back({s.seq, s.len, s.is_retransmit});
        },
        &metrics, nullptr);
  }

  net::Segment ack(uint64_t cum, std::vector<net::SackBlock> sacks = {}) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.sacks.assign(sacks.begin(), sacks.end());
    a.rwnd = 1 << 30;
    return a;
  }

  sim::Simulator sim;
  Metrics metrics;
  std::unique_ptr<Sender> sender;
  std::vector<Sent> wire;
};

TEST_F(TlpTest, ProbeFiresBeforeRto) {
  make(true);
  sender->write(5 * kMss);
  wire.clear();
  // ACK for the first 4 segments; the last is lost, no dupacks possible.
  sender->on_ack_segment(ack(4 * kMss));
  // PTO = 2*SRTT + delack bound (single segment) = ~250 ms << RTO.
  sim.run(400_ms);
  EXPECT_EQ(metrics.tlp_probes_sent, 1u);
  EXPECT_EQ(metrics.timeouts_total, 0u);
  ASSERT_GE(wire.size(), 1u);
  EXPECT_TRUE(wire.back().retx);
  EXPECT_EQ(wire.back().seq, 4 * kMss);  // the tail segment
}

TEST_F(TlpTest, NoProbeWhenAcksArrive) {
  make(true);
  sender->write(4 * kMss);
  sim.schedule_in(100_ms, [&] { sender->on_ack_segment(ack(2 * kMss)); });
  sim.schedule_in(200_ms, [&] { sender->on_ack_segment(ack(4 * kMss)); });
  sim.run(1_s);
  EXPECT_EQ(metrics.tlp_probes_sent, 0u);
  EXPECT_EQ(metrics.timeouts_total, 0u);
}

TEST_F(TlpTest, AtMostOneProbePerEpisode) {
  make(true);
  sender->write(3 * kMss);
  sim.run(900_ms);  // nothing ACKed at all: one probe, then RTO
  EXPECT_EQ(metrics.tlp_probes_sent, 1u);
}

TEST_F(TlpTest, RtoStillFiresIfProbeDoesNotHelp) {
  make(true);
  sender->write(3 * kMss);
  sim.run(5_s);
  EXPECT_EQ(metrics.tlp_probes_sent, 1u);
  EXPECT_GE(metrics.timeouts_total, 1u);
}

TEST_F(TlpTest, ProbePrefersNewData) {
  make(true);
  sender->write(30 * kMss);  // 10 sent (IW10), 20 waiting
  wire.clear();
  sim.run(400_ms);  // no ACKs: probe fires with NEW data
  ASSERT_EQ(metrics.tlp_probes_sent, 1u);
  ASSERT_EQ(wire.size(), 1u);
  EXPECT_FALSE(wire[0].retx);
  EXPECT_EQ(wire[0].seq, 10 * kMss);
}

TEST_F(TlpTest, DisabledByDefaultConfig) {
  SenderConfig cfg;
  EXPECT_FALSE(cfg.tail_loss_probe);
  make(false);
  sender->write(3 * kMss);
  sim.run(900_ms);
  EXPECT_EQ(metrics.tlp_probes_sent, 0u);
}

TEST_F(TlpTest, ProbeRetransmitRepairsTailEndToEnd) {
  // Full-path test: drop the last segment of a short response; with TLP
  // the transfer completes via probe + ACK instead of waiting for RTO.
  sim::Simulator fullsim;
  ConnectionConfig cfg;
  cfg.sender.mss = kMss;
  cfg.sender.tail_loss_probe = true;
  cfg.sender.handshake_rtt = 100_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(5), 100_ms);
  Metrics m;
  Connection conn(fullsim, cfg, sim::Rng(2), &m, nullptr);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{5}));
  conn.write(5 * kMss);
  fullsim.run(sim::Time::seconds(10));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_EQ(m.tlp_probes_sent, 1u);
  EXPECT_EQ(m.timeouts_total, 0u);

  // Without TLP the identical scenario needs an RTO.
  sim::Simulator refsim;
  cfg.sender.tail_loss_probe = false;
  Metrics m2;
  Connection ref(refsim, cfg, sim::Rng(2), &m2, nullptr);
  ref.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{5}));
  ref.write(5 * kMss);
  refsim.run(sim::Time::seconds(10));
  EXPECT_TRUE(ref.sender().all_acked());
  EXPECT_GE(m2.timeouts_total, 1u);
}

TEST_F(TlpTest, SpuriousProbeCausesDsackNotCollapse) {
  // The tail was merely slow (long delack); the probe duplicates it. The
  // receiver DSACKs; the sender must not reduce its window.
  sim::Simulator fullsim;
  ConnectionConfig cfg;
  cfg.sender.mss = kMss;
  cfg.sender.tail_loss_probe = true;
  cfg.sender.tlp_delack_bound = sim::Time::milliseconds(1);  // probe early
  cfg.sender.handshake_rtt = 100_ms;
  cfg.receiver.ack_every = 2;
  cfg.receiver.delack_timeout = 300_ms;  // pathological delayed ACK
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(5), 100_ms);
  Metrics m;
  Connection conn(fullsim, cfg, sim::Rng(3), &m, nullptr);
  const uint64_t cwnd_before = conn.sender().cwnd_bytes();
  conn.write(1 * kMss);
  fullsim.run(sim::Time::seconds(5));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_GE(conn.sender().cwnd_bytes(), cwnd_before);
  EXPECT_EQ(m.timeouts_total, 0u);
}

}  // namespace
}  // namespace prr::tcp
