// Golden-string tests for obs::snapshot / snapshot_json corner states.
// These pin the exact rendered output — the snapshot is a forensic
// surface people copy into bug reports and diff across runs, so its
// format is part of the observable contract. If a change here is
// intentional, update the golden strings deliberately.
//
// Corner states covered: an RTO interrupting fast recovery (Loss state,
// backed-off timer, scoreboard full of holes), a DSACK undo (window
// restored, ssthresh back to "infinity"), and a zero-window stall
// (flight pinned against a 1-byte peer window).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "obs/json.h"
#include "obs/snapshot.h"
#include "tcp/sender.h"

namespace prr::obs {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

class SnapshotTest : public ::testing::Test {
 protected:
  void make(tcp::RecoveryKind kind) {
    tcp::SenderConfig cfg;
    cfg.mss = kMss;
    cfg.initial_cwnd_segments = 20;
    cfg.cc = tcp::CcKind::kNewReno;
    cfg.recovery = kind;
    sender = std::make_unique<tcp::Sender>(
        sim, cfg, [](net::Segment) {}, &metrics, &rlog);
  }

  void ack(uint64_t cum, std::vector<net::SackBlock> sacks = {},
           std::optional<net::SackBlock> dsack = std::nullopt,
           uint64_t rwnd = 1u << 30) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.sacks.assign(sacks.begin(), sacks.end());
    a.dsack = dsack;
    a.rwnd = rwnd;
    sender->on_ack_segment(a);
  }

  // 20 segments out, segment 0 lost, dupacks until recovery triggers.
  void enter_single_loss() {
    sender->write(20 * kMss);
    for (int i = 0; i < 3; ++i) {
      ack(0, {{kMss, static_cast<uint64_t>(i + 2) * kMss}});
    }
    ASSERT_EQ(sender->state(), tcp::TcpState::kRecovery);
  }

  sim::Simulator sim;
  tcp::Metrics metrics;
  stats::RecoveryLog rlog;
  std::unique_ptr<tcp::Sender> sender;
};

TEST_F(SnapshotTest, GoldenRtoMidRecovery) {
  make(tcp::RecoveryKind::kPrr);
  enter_single_loss();
  sim.run(5_s);  // ACK clock stops: RTO fires (twice) mid-recovery
  ASSERT_EQ(sender->state(), tcp::TcpState::kLoss);

  EXPECT_EQ(snapshot(*sender, 7),
            "conn 7 state:Loss\n"
            "  newreno prr rto:4000ms rtt:0.0/0.0ms mss:1000 dupthresh:3\n"
            "  cwnd:1.0 ssthresh:8250 pipe:1000 una:0 nxt:20000 "
            "rwnd:1073741824\n"
            "  sacked:3 lost:17 retrans:3 timers:armed\n");
  const std::string json = snapshot_json(*sender, 7);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_EQ(
      json,
      "{\"conn\":7,\"state\":\"Loss\",\"aborted\":false,"
      "\"cc\":\"newreno\",\"recovery\":\"prr\",\"rto_ms\":4000,"
      "\"srtt_ms\":0,\"rttvar_ms\":0,\"backoffs\":2,\"mss\":1000,"
      "\"dupthresh\":3,\"reordering\":false,\"cwnd_bytes\":1000,"
      "\"ssthresh_bytes\":8250,\"pipe_bytes\":1000,\"snd_una\":0,"
      "\"snd_nxt\":20000,\"peer_rwnd\":1073741824,\"sacked_segments\":3,"
      "\"lost_segments\":17,\"retransmits\":3,\"timers_pending\":true}");
}

TEST_F(SnapshotTest, GoldenDsackUndo) {
  make(tcp::RecoveryKind::kPrr);
  enter_single_loss();
  // Cumulative ACK plus a DSACK for the retransmitted hole: spurious
  // recovery, fully undone — window restored, ssthresh back to "inf".
  ack(20 * kMss, {}, net::SackBlock{0, kMss});
  ASSERT_EQ(metrics.undo_events, 1u);

  EXPECT_EQ(snapshot(*sender, 8),
            "conn 8 state:Open\n"
            "  newreno prr rto:200ms rtt:0.0/0.0ms mss:1000 dupthresh:3\n"
            "  cwnd:21.0 ssthresh:18446744073709551615 pipe:0 una:20000 "
            "nxt:20000 rwnd:1073741824\n"
            "  sacked:0 lost:0 retrans:1 timers:none\n");
  const std::string json = snapshot_json(*sender, 8);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_EQ(
      json,
      "{\"conn\":8,\"state\":\"Open\",\"aborted\":false,"
      "\"cc\":\"newreno\",\"recovery\":\"prr\",\"rto_ms\":200,"
      "\"srtt_ms\":0,\"rttvar_ms\":0,\"backoffs\":0,\"mss\":1000,"
      "\"dupthresh\":3,\"reordering\":false,\"cwnd_bytes\":21000,"
      "\"ssthresh_bytes\":18446744073709551615,\"pipe_bytes\":0,"
      "\"snd_una\":20000,\"snd_nxt\":20000,\"peer_rwnd\":1073741824,"
      "\"sacked_segments\":0,\"lost_segments\":0,\"retransmits\":1,"
      "\"timers_pending\":false}");
}

TEST_F(SnapshotTest, GoldenZeroWindowStall) {
  make(tcp::RecoveryKind::kPrr);
  sender->write(20 * kMss);
  // The peer advertises a 1-byte window (0 encodes "not present" in this
  // simulator's segments): 15 kB of flight pinned, nothing sendable.
  ack(5 * kMss, {}, std::nullopt, /*rwnd=*/1);
  ASSERT_EQ(sender->state(), tcp::TcpState::kOpen);

  EXPECT_EQ(snapshot(*sender, 9),
            "conn 9 state:Open\n"
            "  newreno prr rto:200ms rtt:0.0/0.0ms mss:1000 dupthresh:3\n"
            "  cwnd:21.0 ssthresh:18446744073709551615 pipe:15000 "
            "una:5000 nxt:20000 rwnd:1\n"
            "  sacked:0 lost:0 retrans:0 timers:armed\n");
  const std::string json = snapshot_json(*sender, 9);
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_EQ(
      json,
      "{\"conn\":9,\"state\":\"Open\",\"aborted\":false,"
      "\"cc\":\"newreno\",\"recovery\":\"prr\",\"rto_ms\":200,"
      "\"srtt_ms\":0,\"rttvar_ms\":0,\"backoffs\":0,\"mss\":1000,"
      "\"dupthresh\":3,\"reordering\":false,\"cwnd_bytes\":21000,"
      "\"ssthresh_bytes\":18446744073709551615,\"pipe_bytes\":15000,"
      "\"snd_una\":5000,\"snd_nxt\":20000,\"peer_rwnd\":1,"
      "\"sacked_segments\":0,\"lost_segments\":0,\"retransmits\":0,"
      "\"timers_pending\":true}");
}

}  // namespace
}  // namespace prr::obs
