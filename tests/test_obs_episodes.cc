// Episode analytics (obs/episodes.h): the builder's state machine on a
// hand-driven single-loss recovery, field-exact reconciliation against
// stats::RecoveryLog and tcp::Metrics on a real sweep, and the
// determinism contract (thread count and tracing must not change the
// table). Skipped wholesale when tracing is compiled out — episode
// collection is defined to be a no-op there.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/episodes.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "tcp/sender.h"
#include "workload/web_workload.h"

namespace prr::obs {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

class EpisodeBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace_compiled_in()) {
      GTEST_SKIP() << "tracing compiled out (PRR_TRACING=OFF)";
    }
  }

  void make(tcp::RecoveryKind kind) {
    tcp::SenderConfig cfg;
    cfg.mss = kMss;
    cfg.initial_cwnd_segments = 20;
    cfg.cc = tcp::CcKind::kNewReno;
    cfg.recovery = kind;
    sender = std::make_unique<tcp::Sender>(
        sim, cfg, [](net::Segment) {}, &metrics, &rlog);
    recorder = std::make_unique<FlightRecorder>(1u << 12);
    recorder->add_listener(
        [this](const TraceRecord& r) { builder.on_record(r); });
    sender->set_recorder(recorder.get(), /*conn_id=*/1);
  }

  net::Segment ack(uint64_t cum, std::vector<net::SackBlock> sacks = {},
                   std::optional<net::SackBlock> dsack = std::nullopt) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.sacks.assign(sacks.begin(), sacks.end());
    a.dsack = dsack;
    a.rwnd = 1 << 30;
    return a;
  }

  // Single loss of segment 0 out of 20; dupacks until recovery triggers.
  void enter_single_loss() {
    sender->write(20 * kMss);
    for (int i = 0; i < 3 && sender->state() != tcp::TcpState::kRecovery;
         ++i) {
      sender->on_ack_segment(ack(0, {{kMss, (i + 2) * kMss}}));
    }
    ASSERT_EQ(sender->state(), tcp::TcpState::kRecovery);
  }

  // Declaration order doubles as a lifetime contract: the sender's
  // destructor cancels pending timers, which writes trace records
  // through the recorder into the builder — so the sender must be
  // destroyed first (declared last), the recorder second, builder last.
  sim::Simulator sim;
  tcp::Metrics metrics;
  stats::RecoveryLog rlog;
  EpisodeBuilder builder{EpisodeBuilder::Options{.keep_ledgers = true}};
  std::unique_ptr<FlightRecorder> recorder;
  std::unique_ptr<tcp::Sender> sender;
};

TEST_F(EpisodeBuilderTest, SingleLossEpisodeMatchesRecoveryLog) {
  make(tcp::RecoveryKind::kPrr);
  enter_single_loss();
  // Keep the ACK clock running, then the cumulative ACK covering the
  // recovery point completes the episode.
  for (int i = 4; i < 19; ++i) {
    sender->on_ack_segment(ack(0, {{kMss, (i + 1) * kMss}}));
  }
  sender->on_ack_segment(ack(20 * kMss));
  ASSERT_EQ(sender->state(), tcp::TcpState::kOpen);
  builder.finish();

  ASSERT_EQ(rlog.count(), 1u);
  ASSERT_EQ(builder.episodes().size(), 1u);
  const RecoveryEpisode& ep = builder.episodes()[0];
  const stats::RecoveryEvent& ev = rlog.events()[0];

  EXPECT_EQ(ep.summary.exit, EpisodeExit::kCompleted);
  EXPECT_EQ(ep.summary.conn, 1u);
  EXPECT_EQ(ep.summary.start_ns, ev.start.ns());
  EXPECT_EQ(ep.summary.end_ns, ev.end.ns());
  EXPECT_EQ(ep.summary.pipe_at_start, ev.pipe_at_start);
  EXPECT_EQ(ep.summary.ssthresh, ev.ssthresh);
  EXPECT_EQ(ep.summary.cwnd_at_start, ev.cwnd_at_start);
  EXPECT_EQ(ep.summary.cwnd_at_exit, ev.cwnd_at_exit);
  EXPECT_EQ(ep.summary.cwnd_after_exit, ev.cwnd_after_exit);
  EXPECT_EQ(ep.summary.pipe_at_exit, ev.pipe_at_exit);
  EXPECT_EQ(ep.summary.mss, ev.mss);
  EXPECT_EQ(ep.summary.retransmits, ev.retransmits);
  EXPECT_EQ(ep.summary.bytes_sent_during, ev.bytes_sent_during);
  EXPECT_EQ(ep.summary.max_burst_segments, ev.max_burst_segments);
  EXPECT_EQ(ep.summary.completed(), ev.completed);
  EXPECT_EQ(ep.summary.slow_start_after, ev.slow_start_after);
  EXPECT_FALSE(ep.summary.interrupted_by_timeout());

  // The ledger carries one row per in-recovery ACK, with the PRR
  // annotations riding on the rows where the PRR policy ran.
  EXPECT_EQ(ep.summary.acks, ep.ledger.size());
  ASSERT_FALSE(ep.ledger.empty());
  bool any_prr = false;
  uint64_t delivered = 0;
  for (const EpisodeAck& row : ep.ledger) {
    delivered += row.delivered;
    any_prr |= row.prr_valid;
    EXPECT_EQ(row.ssthresh, ev.ssthresh);
  }
  EXPECT_TRUE(any_prr);
  EXPECT_EQ(ep.summary.delivered_bytes, delivered);

  // Stream counters mirror the Metrics accumulator.
  const EpisodeBuilder::StreamCounts& s = builder.stream();
  EXPECT_EQ(s.data_segments_sent, metrics.data_segments_sent);
  EXPECT_EQ(s.retransmits_total, metrics.retransmits_total);
  EXPECT_EQ(s.fast_retransmits, metrics.fast_retransmits);
  EXPECT_EQ(s.dsacks_received, metrics.dsacks_received);
  EXPECT_EQ(s.undo_events, metrics.undo_events);
  EXPECT_EQ(s.timeouts_total, metrics.timeouts_total);
}

TEST_F(EpisodeBuilderTest, DsackUndoClosesEpisodeAsUndo) {
  make(tcp::RecoveryKind::kPrr);
  enter_single_loss();
  // Cumulative ACK plus a DSACK for the retransmitted hole: the loss
  // was spurious reordering and the sender reverts.
  sender->on_ack_segment(ack(20 * kMss, {}, net::SackBlock{0, kMss}));
  ASSERT_EQ(metrics.undo_events, 1u);
  builder.finish();

  ASSERT_EQ(builder.episodes().size(), 1u);
  const EpisodeSummary& s = builder.episodes()[0].summary;
  EXPECT_EQ(s.exit, EpisodeExit::kUndo);
  EXPECT_TRUE(s.completed());  // RecoveryLog counts undo as completed
  EXPECT_EQ(builder.stream().undo_events, 1u);
  EXPECT_EQ(s.dsacks_seen, 1u);
  ASSERT_EQ(rlog.count(), 1u);
  EXPECT_EQ(s.cwnd_after_exit, rlog.events()[0].cwnd_after_exit);
  EXPECT_EQ(s.slow_start_after, rlog.events()[0].slow_start_after);
}

TEST_F(EpisodeBuilderTest, RtoMidRecoveryClosesEpisodeAsInterrupted) {
  make(tcp::RecoveryKind::kPrr);
  enter_single_loss();
  sim.run(5_s);  // ACK clock stops: the retransmission timer fires
  ASSERT_GE(metrics.timeouts_total, 1u);
  builder.finish();

  ASSERT_GE(builder.episodes().size(), 1u);
  const EpisodeSummary& s = builder.episodes()[0].summary;
  EXPECT_EQ(s.exit, EpisodeExit::kRtoInterrupted);
  EXPECT_TRUE(s.interrupted_by_timeout());
  EXPECT_FALSE(s.completed());
  ASSERT_GE(rlog.count(), 1u);
  EXPECT_TRUE(rlog.events()[0].interrupted_by_timeout);
  EXPECT_EQ(s.slow_start_after, rlog.events()[0].slow_start_after);
}

TEST_F(EpisodeBuilderTest, StreamEndMidRecoveryTruncates) {
  make(tcp::RecoveryKind::kPrr);
  enter_single_loss();
  builder.finish();  // stream ends while recovery is in progress

  ASSERT_EQ(builder.episodes().size(), 1u);
  EXPECT_EQ(builder.episodes()[0].summary.exit, EpisodeExit::kTruncated);

  EpisodeTable t;
  t.fold(builder);
  EXPECT_EQ(t.total(), 1u);
  EXPECT_EQ(t.finished(), 0u);  // truncated rows leave the mirrors empty
  EXPECT_EQ(t.truncated(), 1u);
  EXPECT_EQ(t.pipe_minus_ssthresh_segs().count(), 0u);
}

class EpisodeSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace_compiled_in()) {
      GTEST_SKIP() << "tracing compiled out (PRR_TRACING=OFF)";
    }
  }

  static exp::RunOptions base_opts() {
    exp::RunOptions opts;
    opts.connections = 600;
    opts.seed = 9;
    opts.threads = 1;
    opts.collect_episodes = true;
    return opts;
  }
};

TEST_F(EpisodeSweepTest, SweepReconcilesWithRecoveryLogAndMetrics) {
  workload::WebWorkload pop;
  const exp::ArmResult r =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), base_opts());

  ASSERT_GT(r.episodes.total(), 0u);
  EXPECT_EQ(r.episodes.finished(), r.recovery_log.count());
  EXPECT_EQ(r.episodes.total(), r.metrics.fast_recovery_events);

  // Every finished episode row must equal the recovery-log event of the
  // same index, field for field.
  std::vector<const EpisodeSummary*> finished;
  for (const EpisodeSummary& row : r.episodes.rows()) {
    if (row.finished()) finished.push_back(&row);
  }
  ASSERT_EQ(finished.size(), r.recovery_log.events().size());
  for (std::size_t i = 0; i < finished.size(); ++i) {
    const EpisodeSummary& ep = *finished[i];
    const stats::RecoveryEvent& ev = r.recovery_log.events()[i];
    ASSERT_EQ(ep.start_ns, ev.start.ns()) << "event " << i;
    ASSERT_EQ(ep.end_ns, ev.end.ns()) << "event " << i;
    ASSERT_EQ(ep.pipe_at_start, ev.pipe_at_start) << "event " << i;
    ASSERT_EQ(ep.ssthresh, ev.ssthresh) << "event " << i;
    ASSERT_EQ(ep.cwnd_at_start, ev.cwnd_at_start) << "event " << i;
    ASSERT_EQ(ep.cwnd_at_exit, ev.cwnd_at_exit) << "event " << i;
    ASSERT_EQ(ep.cwnd_after_exit, ev.cwnd_after_exit) << "event " << i;
    ASSERT_EQ(ep.pipe_at_exit, ev.pipe_at_exit) << "event " << i;
    ASSERT_EQ(ep.mss, ev.mss) << "event " << i;
    ASSERT_EQ(ep.retransmits, ev.retransmits) << "event " << i;
    ASSERT_EQ(ep.bytes_sent_during, ev.bytes_sent_during) << "event " << i;
    ASSERT_EQ(ep.max_burst_segments, ev.max_burst_segments)
        << "event " << i;
    ASSERT_EQ(ep.interrupted_by_timeout(), ev.interrupted_by_timeout)
        << "event " << i;
    ASSERT_EQ(ep.completed(), ev.completed) << "event " << i;
    ASSERT_EQ(ep.slow_start_after, ev.slow_start_after) << "event " << i;
  }

  // Stream counters mirror Metrics.
  const EpisodeBuilder::StreamCounts& s = r.episodes.stream();
  EXPECT_EQ(s.data_segments_sent, r.metrics.data_segments_sent);
  EXPECT_EQ(s.retransmits_total, r.metrics.retransmits_total);
  EXPECT_EQ(s.fast_retransmits, r.metrics.fast_retransmits);
  EXPECT_EQ(s.dsacks_received, r.metrics.dsacks_received);
  EXPECT_EQ(s.undo_events, r.metrics.undo_events);
  EXPECT_EQ(s.lost_retransmits_detected,
            r.metrics.lost_retransmits_detected);
  EXPECT_EQ(s.lost_fast_retransmits, r.metrics.lost_fast_retransmits);
  EXPECT_EQ(s.timeouts_total, r.metrics.timeouts_total);
}

TEST_F(EpisodeSweepTest, TableAccessorsMatchRecoveryLogMirrors) {
  workload::WebWorkload pop;
  const exp::ArmResult r =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), base_opts());
  const EpisodeTable& tab = r.episodes;
  const stats::RecoveryLog& log = r.recovery_log;

  EXPECT_DOUBLE_EQ(tab.fraction_start_below_ssthresh(),
                   log.fraction_start_below_ssthresh());
  EXPECT_DOUBLE_EQ(tab.fraction_start_equal_ssthresh(),
                   log.fraction_start_equal_ssthresh());
  EXPECT_DOUBLE_EQ(tab.fraction_start_above_ssthresh(),
                   log.fraction_start_above_ssthresh());
  EXPECT_DOUBLE_EQ(tab.fraction_slow_start_after(),
                   log.fraction_slow_start_after());
  EXPECT_DOUBLE_EQ(tab.fraction_with_timeout(),
                   log.fraction_with_timeout());
  EXPECT_EQ(tab.pipe_minus_ssthresh_segs().values(),
            log.pipe_minus_ssthresh_segs().values());
  EXPECT_EQ(tab.cwnd_minus_ssthresh_exit_segs().values(),
            log.cwnd_minus_ssthresh_exit_segs().values());
  EXPECT_EQ(tab.cwnd_after_exit_segs().values(),
            log.cwnd_after_exit_segs().values());
  EXPECT_EQ(tab.recovery_time_ms().values(),
            log.recovery_time_ms().values());
}

TEST_F(EpisodeSweepTest, TableIdenticalAcrossThreadsAndTracing) {
  workload::WebWorkload pop;
  exp::RunOptions opts = base_opts();
  const exp::ArmResult serial =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  const std::string reference = serial.episodes.to_json();
  ASSERT_TRUE(json_valid(reference)) << reference;

  opts.threads = 3;
  const exp::ArmResult parallel =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  EXPECT_EQ(parallel.episodes.to_json(), reference);
  EXPECT_EQ(parallel.episodes.rows().size(), serial.episodes.rows().size());

  opts.trace = true;  // explicit tracing must not change the table
  const exp::ArmResult traced =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  EXPECT_EQ(traced.episodes.to_json(), reference);
}

TEST_F(EpisodeSweepTest, TraceConnectionCapturesEpisodesWithLedgers) {
  workload::WebWorkload pop;
  exp::RunOptions opts = base_opts();
  // Find a connection that entered recovery, then re-trace it.
  const exp::ArmResult r =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  ASSERT_GT(r.episodes.finished(), 0u);
  const uint64_t conn = r.episodes.rows()[0].conn;

  const exp::TracedConnection t =
      exp::trace_connection(pop, exp::ArmConfig::prr_arm(), opts, conn);
  ASSERT_FALSE(t.records.empty());
  ASSERT_FALSE(t.episodes.empty());
  // The re-traced first episode is the same episode the sweep folded.
  const EpisodeSummary& sweep_row = r.episodes.rows()[0];
  const EpisodeSummary& traced_row = t.episodes[0].summary;
  EXPECT_EQ(traced_row.conn, sweep_row.conn);
  EXPECT_EQ(traced_row.start_ns, sweep_row.start_ns);
  EXPECT_EQ(traced_row.end_ns, sweep_row.end_ns);
  EXPECT_EQ(traced_row.delivered_bytes, sweep_row.delivered_bytes);
  EXPECT_FALSE(t.episodes[0].ledger.empty());
  EXPECT_EQ(t.episodes[0].ledger.size(), traced_row.acks);
  // describe() renders without falling over.
  EXPECT_FALSE(describe(t.episodes[0]).empty());
}

}  // namespace
}  // namespace prr::obs
