// ECN (RFC 3168) with PRR-paced CWR reductions — RFC 6937's non-loss
// congestion-signal path: queue marking, ECE echo/latch semantics, and
// window reduction to ssthresh with zero retransmissions.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/receiver.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

TEST(EcnLink, MarksEctSegmentsAboveThreshold) {
  sim::Simulator sim;
  net::Link::Config cfg;
  cfg.rate = util::DataRate::mbps(1);
  cfg.propagation_delay = 1_ms;
  cfg.ecn_mark_threshold = 3;
  int ce = 0, delivered = 0;
  net::Link link(sim, cfg, [&](net::Segment s) {
    ++delivered;
    ce += s.ce;
  });
  for (int i = 0; i < 8; ++i) {
    net::Segment s;
    s.seq = static_cast<uint64_t>(i) * kMss;
    s.len = kMss;
    s.ect = true;
    link.send(std::move(s));
  }
  sim.run();
  EXPECT_EQ(delivered, 8);
  // Depth at arrival: 0,1,2,3,4,5,6,7 -> marked from the 4th on.
  EXPECT_EQ(ce, 5);
  EXPECT_EQ(link.stats().ce_marked, 5u);
}

TEST(EcnLink, NonEctSegmentsNeverMarked) {
  sim::Simulator sim;
  net::Link::Config cfg;
  cfg.ecn_mark_threshold = 1;
  int ce = 0;
  net::Link link(sim, cfg, [&](net::Segment s) { ce += s.ce; });
  for (int i = 0; i < 5; ++i) {
    net::Segment s;
    s.len = kMss;
    link.send(std::move(s));
  }
  sim.run();
  EXPECT_EQ(ce, 0);
}

TEST(EcnReceiver, LatchesEceUntilCwr) {
  sim::Simulator sim;
  std::vector<net::Segment> acks;
  Receiver::Config cfg;
  cfg.ecn = true;
  cfg.ack_every = 1;
  Receiver rx(sim, cfg, [&](net::Segment a) { acks.push_back(a); });

  net::Segment d;
  d.len = kMss;
  d.ce = true;
  rx.on_data(d);  // CE-marked
  EXPECT_TRUE(acks.back().ece);

  d.seq = kMss;
  d.ce = false;
  rx.on_data(d);  // plain data: ECE stays latched
  EXPECT_TRUE(acks.back().ece);

  d.seq = 2 * kMss;
  d.cwr = true;
  rx.on_data(d);  // sender confirmed: ECE clears
  EXPECT_FALSE(acks.back().ece);
}

class EcnConnectionTest : public ::testing::Test {
 protected:
  // Low-rate bottleneck with a marking threshold well below the queue
  // limit: a cwnd-limited flow builds queue and gets CE marks, never
  // drops.
  std::unique_ptr<Connection> make(sim::Simulator& sim, bool ecn,
                                   Metrics* m) {
    ConnectionConfig cfg;
    cfg.sender.mss = kMss;
    cfg.sender.cc = CcKind::kNewReno;
    cfg.sender.ecn = ecn;
    cfg.sender.handshake_rtt = 60_ms;
    cfg.receiver.ecn = ecn;
    cfg.path =
        net::Path::Config::symmetric(util::DataRate::mbps(2), 60_ms, 200);
    cfg.path.data_link.ecn_mark_threshold = 10;
    return std::make_unique<Connection>(sim, cfg, sim::Rng(1), m, nullptr);
  }
};

TEST_F(EcnConnectionTest, CwrReducesWindowWithoutRetransmissions) {
  sim::Simulator sim;
  Metrics m;
  auto conn = make(sim, true, &m);
  conn->write(600'000);
  sim.run(sim::Time::seconds(120));
  ASSERT_TRUE(conn->sender().all_acked());
  EXPECT_GT(m.ecn_cwr_events, 0u);
  EXPECT_EQ(m.retransmits_total, 0u);       // signal without loss
  EXPECT_EQ(m.fast_recovery_events, 0u);
  EXPECT_EQ(m.timeouts_total, 0u);
  EXPECT_GT(conn->path().data_link().stats().ce_marked, 0u);
}

TEST_F(EcnConnectionTest, WithoutEcnSameQueueNeverMarks) {
  sim::Simulator sim;
  Metrics m;
  auto conn = make(sim, false, &m);
  conn->write(600'000);
  sim.run(sim::Time::seconds(120));
  ASSERT_TRUE(conn->sender().all_acked());
  EXPECT_EQ(m.ecn_cwr_events, 0u);
  EXPECT_EQ(conn->path().data_link().stats().ce_marked, 0u);
}

TEST_F(EcnConnectionTest, CwrConvergesTowardSsthresh) {
  sim::Simulator sim;
  Metrics m;
  auto conn = make(sim, true, &m);
  // Track the window right after each CWR episode via a probe on ACKs.
  uint64_t min_cwnd_after_reduction = UINT64_MAX;
  bool was_reducing = false;
  conn->sender().on_ack_hook = [&](const net::Segment&) {
    const uint64_t cwnd = conn->sender().cwnd_bytes();
    const uint64_t ssthresh = conn->sender().ssthresh_bytes();
    if (ssthresh != UINT64_MAX && cwnd <= ssthresh + kMss) {
      was_reducing = true;
      min_cwnd_after_reduction =
          std::min(min_cwnd_after_reduction, cwnd);
    }
  };
  conn->write(600'000);
  sim.run(sim::Time::seconds(120));
  ASSERT_TRUE(conn->sender().all_acked());
  ASSERT_TRUE(was_reducing);
  // The PRR-paced reduction approaches ssthresh but never collapses the
  // window the way a loss-driven Linux recovery would.
  EXPECT_GT(min_cwnd_after_reduction, 2u * kMss);
}

TEST_F(EcnConnectionTest, EcnKeepsGoodputCloseToLossRecovery) {
  // Same path, marking vs dropping at the same queue depth: ECN should
  // finish in comparable (or less) time with zero retransmissions.
  auto run_transfer = [](bool ecn) {
    sim::Simulator sim;
    ConnectionConfig cfg;
    cfg.sender.mss = kMss;
    cfg.sender.cc = CcKind::kNewReno;
    cfg.sender.ecn = ecn;
    cfg.sender.handshake_rtt = 60_ms;
    cfg.receiver.ecn = ecn;
    cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(2),
                                            60_ms, ecn ? 200 : 10);
    if (ecn) cfg.path.data_link.ecn_mark_threshold = 10;
    Metrics m;
    Connection conn(sim, cfg, sim::Rng(2), &m, nullptr);
    conn.write(600'000);
    sim.run(sim::Time::seconds(300));
    EXPECT_TRUE(conn.sender().all_acked());
    return std::pair{sim.now(), m.retransmits_total};
  };
  auto [t_ecn, retx_ecn] = run_transfer(true);
  auto [t_drop, retx_drop] = run_transfer(false);
  EXPECT_EQ(retx_ecn, 0u);
  EXPECT_GT(retx_drop, 0u);
  EXPECT_LT(t_ecn.seconds_d(), t_drop.seconds_d() * 1.3);
}

}  // namespace
}  // namespace prr::tcp
