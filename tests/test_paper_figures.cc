// Integration tests reproducing the qualitative claims of the paper's
// Figures 2-4 on the §4.1 testbed (100 ms RTT, 1.2 Mbps, MSS 1000).
#include <gtest/gtest.h>

#include "exp/scenarios.h"
#include "obs/trace_record.h"

namespace prr::exp {
namespace {

using namespace prr::sim::literals;
using tcp::RecoveryKind;

TEST(Fig2, PrrRecoversWithFourRetransmitsAndNoTimeout) {
  FigureRun run = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kPrr));
  EXPECT_EQ(run.metrics.retransmits_total, 4u);
  EXPECT_EQ(run.metrics.fast_retransmits, 4u);
  EXPECT_EQ(run.metrics.timeouts_total, 0u);
  EXPECT_EQ(run.metrics.fast_recovery_events, 1u);
}

TEST(Fig2, PrrExitsRecoveryAtSsthresh) {
  FigureRun run = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kPrr));
  ASSERT_EQ(run.recovery_log.count(), 1u);
  const auto& e = run.recovery_log.events()[0];
  EXPECT_TRUE(e.completed);
  // Reno halves IW20 -> ssthresh 10 segments; PRR converges exactly.
  EXPECT_EQ(e.ssthresh, 10'000u);
  EXPECT_EQ(e.cwnd_after_exit, 10'000u);
  EXPECT_FALSE(e.slow_start_after);
}

TEST(Fig2, PrrDeliversSecondResponseInOneRtt) {
  FigureRun run = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kPrr));
  // The 10 kB written at 500 ms fits the post-recovery cwnd of 10: all
  // ten segments go out back-to-back and are ACKed within ~2 RTT
  // (serialization of 10 segments ~69 ms + 100 ms RTT + delack).
  EXPECT_LT(run.all_acked_at.ms(), 500 + 250);
}

TEST(Fig2, LinuxEndsRecoveryWithTinyWindowAndSlowStarts) {
  FigureRun run = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kLinuxRateHalving));
  ASSERT_GE(run.recovery_log.count(), 1u);
  const auto& e = run.recovery_log.events()[0];
  EXPECT_TRUE(e.completed);
  // cwnd pinned to pipe+1 -> tiny exit window, far below ssthresh.
  EXPECT_LE(e.cwnd_after_exit, 3000u);
  EXPECT_TRUE(e.slow_start_after);
  // The second response needs several RTTs of slow start: much later
  // than PRR's single-RTT delivery.
  FigureRun prr = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kPrr));
  EXPECT_GT(run.all_acked_at.ms(), prr.all_acked_at.ms() + 150);
}

TEST(Fig2, Rfc3517ShowsHalfRttSilenceAfterFirstRetransmit) {
  // The time-sequence trace is fed from the flight recorder.
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  FigureRun run = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kRfc3517));
  const auto retx = run.trace.retransmits();
  ASSERT_GE(retx.size(), 2u);
  // First fast retransmit goes out immediately on entry, then nothing is
  // allowed until pipe falls below cwnd: a gap of several ACK times.
  const sim::Time gap = retx[1].at - retx[0].at;
  EXPECT_GT(gap.ms(), 25);  // >> one ACK interval (~7 ms)
  // PRR spaces the same retransmissions evenly (alternate ACKs).
  FigureRun prr = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kPrr));
  const auto prr_retx = prr.trace.retransmits();
  ASSERT_GE(prr_retx.size(), 2u);
  EXPECT_LT((prr_retx[1].at - prr_retx[0].at).ms(), gap.ms());
}

TEST(Fig2, AllThreeRecoverAllData) {
  for (auto kind : {RecoveryKind::kPrr, RecoveryKind::kLinuxRateHalving,
                    RecoveryKind::kRfc3517}) {
    FigureRun run = run_figure_scenario(FigureScenario::fig2(kind));
    EXPECT_GT(run.all_acked_at.ms(), 0) << static_cast<int>(kind);
    EXPECT_EQ(run.metrics.timeouts_total, 0u) << static_cast<int>(kind);
  }
}

TEST(Fig3, PrrSwitchesToSlowStartPartUnderHeavyLoss) {
  FigureRun run = run_figure_scenario(FigureScenario::fig3(
      RecoveryKind::kPrr));
  // 10 of 20 segments dropped: pipe falls below ssthresh(10) during
  // recovery; the slow-start part must rebuild it without timeouts.
  EXPECT_EQ(run.metrics.timeouts_total, 0u);
  EXPECT_EQ(run.metrics.retransmits_total, 10u);
  EXPECT_GT(run.all_acked_at.ms(), 0);
  ASSERT_GE(run.recovery_log.count(), 1u);
  const auto& e = run.recovery_log.events()[0];
  // At entry only part of the first loss cluster is marked (progressive
  // FACK marking); the second cluster drives pipe below ssthresh
  // mid-recovery.
  EXPECT_LE(e.pipe_at_start, 17'000u);
  EXPECT_GE(e.retransmits, 10u);
}

TEST(Fig3, PrrSlowStartPartSendsUpToTwoPerAck) {
  FigureRun run = run_figure_scenario(FigureScenario::fig3(
      RecoveryKind::kPrr));
  // "PRR operates in slow start part and transmits two segments for
  // every ACK" — per-ACK bursts inside recovery stay small. The one
  // larger send happens on the ACK that reveals the second loss cluster
  // (banked allowance released, bounded by ssthresh - pipe), still far
  // from RFC 3517's arbitrary bursts.
  ASSERT_GE(run.recovery_log.count(), 1u);
  EXPECT_LE(run.recovery_log.events()[0].max_burst_segments, 4u);
}

TEST(Fig3, PrrMaintainsAckClockingNoLargeBursts) {
  // §4.3 property 1 contrast: when pipe collapses below ssthresh,
  // RFC 3517 fills the hole in one multi-segment burst, PRR does not.
  FigureRun prr = run_figure_scenario(FigureScenario::fig3(
      RecoveryKind::kPrr));
  FigureRun rfc = run_figure_scenario(FigureScenario::fig3(
      RecoveryKind::kRfc3517));
  ASSERT_GE(prr.recovery_log.count(), 1u);
  ASSERT_GE(rfc.recovery_log.count(), 1u);
  EXPECT_LT(prr.recovery_log.events()[0].max_burst_segments,
            rfc.recovery_log.events()[0].max_burst_segments);
}

TEST(Fig4, PrrBanksSendingOpportunitiesAcrossAppStall) {
  FigureRun run = run_figure_scenario(FigureScenario::fig4(
      RecoveryKind::kPrr));
  // One loss in 20 segments; the app writes 10 more mid-recovery. The
  // catch-up burst is bounded by ratio*(prr_delivered - prr_out): ~3
  // segments for Reno, then ACK-paced. No timeout, single recovery.
  EXPECT_EQ(run.metrics.timeouts_total, 0u);
  EXPECT_EQ(run.metrics.fast_recovery_events, 1u);
  EXPECT_EQ(run.metrics.retransmits_total, 1u);
  if (obs::trace_compiled_in()) {  // the trace is recorder-fed
    const int burst = run.trace.max_burst(2_ms);
    EXPECT_GE(burst, 2);   // the bank is released as a small burst
    EXPECT_LE(burst, 21);  // bounded: not the whole window at once
  }
  ASSERT_GE(run.recovery_log.count(), 1u);
  EXPECT_GE(run.recovery_log.events()[0].max_burst_segments, 2u);
}

TEST(Fig4, SecondWriteDeliveredPromptlyDespiteStall) {
  FigureRun run = run_figure_scenario(FigureScenario::fig4(
      RecoveryKind::kPrr));
  EXPECT_GT(run.all_acked_at.ms(), 0);
  EXPECT_LT(run.all_acked_at.ms(), 1200);
}

TEST(Scenarios, TracesAreNonEmptyAndRenderable) {
  // The time-sequence trace is fed from the flight recorder.
  if (!obs::trace_compiled_in()) GTEST_SKIP() << "tracing compiled out";
  FigureRun run = run_figure_scenario(FigureScenario::fig2(
      RecoveryKind::kPrr));
  EXPECT_GT(run.trace.events().size(), 30u);
  const std::string ascii = run.trace.render_ascii(40);
  EXPECT_NE(ascii.find('R'), std::string::npos);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_NE(ascii.find('s'), std::string::npos);
}

}  // namespace
}  // namespace prr::exp
