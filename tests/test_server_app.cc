// ServerApp: response sequencing, latency measurement semantics (first
// byte sent -> last byte ACKed), retransmit flagging, throttled writes,
// and abort handling.
#include <gtest/gtest.h>

#include <memory>

#include "http/server_app.h"
#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::http {
namespace {

using namespace prr::sim::literals;

class ServerAppTest : public ::testing::Test {
 protected:
  void make_connection(double loss = 0.0,
                       util::DataRate rate = util::DataRate::mbps(4)) {
    tcp::ConnectionConfig cfg;
    cfg.sender.mss = 1000;
    cfg.sender.handshake_rtt = 100_ms;
    cfg.path = net::Path::Config::symmetric(rate, 100_ms, 200);
    conn = std::make_unique<tcp::Connection>(sim, cfg, sim::Rng(1),
                                             &metrics, nullptr);
    if (loss > 0) {
      conn->path().data_link().set_loss_model(
          std::make_unique<net::BernoulliLoss>(loss, sim::Rng(2)));
    }
  }

  sim::Simulator sim;
  tcp::Metrics metrics;
  std::unique_ptr<tcp::Connection> conn;
  stats::LatencyTracker latency;
};

TEST_F(ServerAppTest, SingleResponseMeasured) {
  make_connection();
  ServerApp app(sim, *conn, {ResponseSpec::plain(5000)}, &latency);
  app.start();
  sim.run(sim::Time::seconds(10));
  ASSERT_TRUE(app.finished());
  ASSERT_EQ(latency.responses().size(), 1u);
  const auto& r = latency.responses()[0];
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.had_retransmit);
  EXPECT_EQ(r.bytes, 5000u);
  // 5 segments at 4 Mbps (~2ms each) + 100 ms RTT: roughly one RTT.
  EXPECT_GT(r.latency_ms(), 100);
  EXPECT_LT(r.latency_ms(), 220);
  EXPECT_DOUBLE_EQ(r.path_rtt_ms, 100);
}

TEST_F(ServerAppTest, MultipleResponsesSequencedWithGaps) {
  make_connection();
  ServerApp app(sim, *conn,
                {ResponseSpec::plain(3000),
                 ResponseSpec::plain(3000, 500_ms),
                 ResponseSpec::plain(3000, 500_ms)},
                &latency);
  app.start();
  sim.run(sim::Time::seconds(30));
  ASSERT_TRUE(app.finished());
  ASSERT_EQ(latency.responses().size(), 3u);
  EXPECT_EQ(app.responses_completed(), 3u);
  // Second response starts ~500 ms after the first completes.
  const auto& r0 = latency.responses()[0];
  const auto& r1 = latency.responses()[1];
  EXPECT_GE((r1.first_byte_sent - r0.last_byte_acked).ms(), 499);
}

TEST_F(ServerAppTest, RetransmitFlagSetOnLossyResponse) {
  make_connection(0.15);
  ServerApp app(sim, *conn,
                {ResponseSpec::plain(20'000), ResponseSpec::plain(1000)},
                &latency);
  app.start();
  sim.run(sim::Time::seconds(120));
  ASSERT_TRUE(app.finished());
  ASSERT_EQ(latency.responses().size(), 2u);
  EXPECT_TRUE(latency.responses()[0].had_retransmit);
}

TEST_F(ServerAppTest, RetransmitFlagPerResponseNotGlobal) {
  // Losses on the first response must not mark the second.
  make_connection();
  // Drop two early segments only (original index based).
  conn->path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{2, 3}));
  ServerApp app(sim, *conn,
                {ResponseSpec::plain(10'000),
                 ResponseSpec::plain(10'000, 100_ms)},
                &latency);
  app.start();
  sim.run(sim::Time::seconds(60));
  ASSERT_EQ(latency.responses().size(), 2u);
  EXPECT_TRUE(latency.responses()[0].had_retransmit);
  EXPECT_FALSE(latency.responses()[1].had_retransmit);
}

TEST_F(ServerAppTest, ThrottledWriteSpreadsTransfer) {
  make_connection(0.0, util::DataRate::mbps(10));
  ResponseSpec spec;
  spec.bytes = 100'000;
  spec.burst_bytes = 20'000;
  spec.chunk_bytes = 10'000;
  spec.chunk_interval = 100_ms;
  ServerApp app(sim, *conn, {spec}, &latency);
  app.start();
  sim.run(sim::Time::seconds(60));
  ASSERT_TRUE(app.finished());
  const auto& r = latency.responses()[0];
  EXPECT_TRUE(r.completed);
  // 8 chunks after the burst at 100 ms each: at least 800 ms total.
  EXPECT_GE(r.latency_ms(), 800);
}

TEST_F(ServerAppTest, AbortRecordsIncompleteResponse) {
  make_connection();
  tcp::ConnectionConfig cfg;  // rebuild with tiny RTO budget
  cfg.sender.mss = 1000;
  cfg.sender.max_rto_backoffs = 2;
  cfg.sender.handshake_rtt = 100_ms;
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(4), 100_ms);
  conn = std::make_unique<tcp::Connection>(sim, cfg, sim::Rng(1), &metrics,
                                           nullptr);
  ServerApp app(sim, *conn, {ResponseSpec::plain(20'000)}, &latency);
  sim.schedule_in(60_ms, [this] { conn->path().kill_client(); });
  app.start();
  sim.run(sim::Time::seconds(120));
  ASSERT_TRUE(app.finished());
  ASSERT_EQ(latency.responses().size(), 1u);
  EXPECT_FALSE(latency.responses()[0].completed);
}

TEST_F(ServerAppTest, EmptyResponseListFinishesImmediately) {
  make_connection();
  ServerApp app(sim, *conn, {}, &latency);
  bool fired = false;
  app.on_finished = [&] { fired = true; };
  app.start();
  EXPECT_TRUE(app.finished());
  EXPECT_TRUE(fired);
}

TEST_F(ServerAppTest, LatencyExcludesRequestGap) {
  make_connection();
  ServerApp app(sim, *conn,
                {ResponseSpec::plain(2000, 300_ms)}, &latency);
  app.start();
  sim.run(sim::Time::seconds(10));
  const auto& r = latency.responses()[0];
  // The 300 ms gap happens before the first byte: latency is still ~RTT.
  EXPECT_LT(r.latency_ms(), 250);
  EXPECT_GE(r.first_byte_sent.ms(), 300);
}

}  // namespace
}  // namespace prr::http
