// MetricsRegistry: idempotent registration, log2-histogram bucketing
// and quantiles, deterministic merge semantics (counters sum, gauges
// max, histograms bucket-sum — merge order must not matter), and
// byte-stable, structurally valid JSON export.
#include <gtest/gtest.h>

#include <utility>

#include "obs/json.h"
#include "obs/metrics_registry.h"

namespace prr::obs {
namespace {

TEST(MetricsRegistry, RegistrationIsIdempotentAndPointerStable) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("tcp.retransmits");
  Counter* c2 = reg.counter("tcp.retransmits");
  EXPECT_EQ(c1, c2);
  c1->add(3);
  EXPECT_EQ(reg.find_counter("tcp.retransmits")->value(), 3u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);

  // Registering many more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(reg.counter("tcp.retransmits"), c1);
  EXPECT_EQ(reg.instrument_count(), 101u);
}

TEST(LogHistogram, BucketBoundaries) {
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3);
  EXPECT_EQ(LogHistogram::bucket_of(1023), 10);
  EXPECT_EQ(LogHistogram::bucket_of(1024), 11);
  EXPECT_EQ(LogHistogram::bucket_of(~uint64_t{0}), 64);
  EXPECT_EQ(LogHistogram::bucket_floor(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_floor(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_floor(11), 1024u);
}

TEST(LogHistogram, StatsAndQuantiles) {
  LogHistogram h;
  for (uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 4950u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 99u);
  EXPECT_DOUBLE_EQ(h.mean(), 49.5);
  // Median of 0..99 lies in bucket [32,64); the approx quantile reports
  // the bucket's upper edge clamped to the observed max.
  EXPECT_GE(h.approx_quantile(0.5), 32u);
  EXPECT_LE(h.approx_quantile(0.5), 64u);
  EXPECT_LE(h.approx_quantile(0.99), 99u);
  EXPECT_GE(h.approx_quantile(0.99), 64u);
  EXPECT_EQ(h.approx_quantile(0.0), 0u);
}

TEST(LogHistogram, MergeSumsBuckets) {
  LogHistogram a;
  LogHistogram b;
  a.record(5);
  a.record(100);
  b.record(7);
  b.record(1'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5u + 100u + 7u + 1'000'000u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1'000'000u);
  EXPECT_EQ(a.bucket(LogHistogram::bucket_of(5)),
            2u);  // 5 and 7 share [4,8)
}

TEST(MetricsRegistry, MergeIsOrderIndependent) {
  auto make_shard = [](uint64_t seed) {
    MetricsRegistry r;
    r.counter("retx")->add(seed);
    r.gauge("hwm")->set(static_cast<int64_t>(seed * 3));
    for (uint64_t v = 0; v < seed; ++v) r.histogram("cost")->record(v * 17);
    return r;
  };

  MetricsRegistry fwd;
  for (uint64_t s : {2u, 5u, 9u}) fwd.merge(make_shard(s));
  MetricsRegistry rev;
  for (uint64_t s : {9u, 5u, 2u}) rev.merge(make_shard(s));

  EXPECT_EQ(fwd.find_counter("retx")->value(), 16u);
  EXPECT_EQ(fwd.find_gauge("hwm")->value(), 27);
  EXPECT_EQ(fwd.find_histogram("cost")->count(), 16u);
  // Byte-identical export regardless of merge order.
  EXPECT_EQ(fwd.to_json(), rev.to_json());
}

TEST(MetricsRegistry, MergeCreatesMissingInstruments) {
  MetricsRegistry a;
  MetricsRegistry b;
  b.counter("only_in_b")->add(4);
  b.histogram("h")->record(12);
  a.merge(b);
  ASSERT_NE(a.find_counter("only_in_b"), nullptr);
  EXPECT_EQ(a.find_counter("only_in_b")->value(), 4u);
  ASSERT_NE(a.find_histogram("h"), nullptr);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

TEST(MetricsRegistry, JsonIsValidAndSorted) {
  MetricsRegistry reg;
  reg.counter("b.second")->add(2);
  reg.counter("a.first")->inc();
  reg.gauge("g")->set(-5);
  reg.histogram("lat")->record(0);
  reg.histogram("lat")->record(1500);
  const std::string json = reg.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  // std::map iteration puts a.first before b.second.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);

  // Empty registry is still a valid document.
  EXPECT_TRUE(json_valid(MetricsRegistry{}.to_json()));
}

TEST(Json, EscapeAndValidate) {
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_TRUE(json_valid("{\"k\":[1,2.5,-3e4,null,true,\"s\"]}"));
  EXPECT_FALSE(json_valid("{\"k\":}"));
  EXPECT_FALSE(json_valid("[1,2"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_TRUE(json_valid(" [ ] "));
}

}  // namespace
}  // namespace prr::obs
