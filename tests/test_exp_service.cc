// End-to-end tests for the live experiment service (exp/service.h):
// open-world admission accounting, JSONL stream well-formedness, the
// decision lifecycle, and drift alerts with auto-quarantined windows.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "exp/service.h"
#include "obs/json.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

exp::ServiceConfig small_config() {
  exp::ServiceConfig cfg;
  cfg.arms = {exp::ArmConfig::linux_arm(), exp::ArmConfig::rfc3517_arm(),
              exp::ArmConfig::prr_arm()};
  cfg.control_arm = 0;
  cfg.seed = 42;
  cfg.arrivals.rate_per_sec = 30.0;
  cfg.arrivals.diurnal.amplitude = 0.3;
  cfg.snapshot_every = sim::Time::seconds(60);
  cfg.max_connections = 6000;
  cfg.run.threads = 1;
  return cfg;
}

// Applies `fn` to each newline-terminated line; returns the line count.
template <typename Fn>
std::size_t for_each_line(const std::string& jsonl, Fn fn) {
  std::size_t count = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    fn(std::string_view(jsonl.data() + start, end - start));
    ++count;
    start = end + 1;
  }
  return count;
}

TEST(ExperimentService, AdmissionAndWindowAccounting) {
  const exp::ServiceConfig cfg = small_config();
  workload::WebWorkload pop;
  exp::ExperimentService service(pop, cfg);
  const exp::ServiceResult res = service.run();

  EXPECT_EQ(res.admitted, cfg.max_connections);
  EXPECT_EQ(res.windows, res.snapshots.size());
  EXPECT_GT(res.windows, 1u);

  // Every admitted connection lands in exactly one window, and every
  // arm ran exactly the admitted set (CRN: identical id ranges).
  uint64_t windowed = 0;
  for (const exp::ScoreboardSnapshot& s : res.snapshots) {
    windowed += s.window_connections;
    ASSERT_EQ(s.arms.size(), cfg.arms.size());
  }
  EXPECT_EQ(windowed, res.admitted);
  ASSERT_EQ(res.arms.size(), cfg.arms.size());
  for (const exp::ArmResult& r : res.arms) {
    EXPECT_EQ(r.connections_run, res.admitted);
  }
  // Cumulative per-arm counters in the last snapshot match the fold.
  const exp::ScoreboardSnapshot& last = res.snapshots.back();
  EXPECT_EQ(last.admitted, res.admitted);
  for (std::size_t a = 0; a < res.arms.size(); ++a) {
    EXPECT_EQ(last.arms[a].connections, res.arms[a].connections_run);
    EXPECT_EQ(last.arms[a].retransmits,
              res.arms[a].metrics.retransmits_total);
  }
  // Snapshot hook saw every snapshot, in order.
  exp::ExperimentService replay(pop, cfg);
  uint64_t hooked = 0;
  replay.set_snapshot_hook([&](const exp::ScoreboardSnapshot& s) {
    EXPECT_EQ(s.window, hooked);
    ++hooked;
  });
  replay.run();
  EXPECT_EQ(hooked, res.windows);
}

TEST(ExperimentService, JsonlStreamsAreWellFormed) {
  const exp::ServiceConfig cfg = small_config();
  workload::WebWorkload pop;
  const exp::ServiceResult res = exp::ExperimentService(pop, cfg).run();

  const std::size_t snaps =
      for_each_line(res.scoreboard_jsonl(), [](std::string_view line) {
        EXPECT_TRUE(obs::json_valid(line)) << line;
      });
  EXPECT_EQ(snaps, res.snapshots.size());
  const std::size_t decisions =
      for_each_line(res.decision_log_jsonl(), [](std::string_view line) {
        EXPECT_TRUE(obs::json_valid(line)) << line;
      });
  EXPECT_EQ(decisions, res.decisions.size());
  for_each_line(res.alert_log_jsonl(), [](std::string_view line) {
    EXPECT_TRUE(obs::json_valid(line)) << line;
  });
  // The terminal view renders without blowing up.
  EXPECT_FALSE(describe(res.snapshots.back()).empty());
}

TEST(ExperimentService, DecisionLifecycle) {
  const exp::ServiceConfig cfg = small_config();
  workload::WebWorkload pop;
  const exp::ServiceResult res = exp::ExperimentService(pop, cfg).run();

  // One initial hold per treatment arm, none for control.
  ASSERT_EQ(res.final_state.size(), cfg.arms.size());
  EXPECT_EQ(res.final_state[cfg.control_arm], exp::Action::kHold);
  std::size_t initial_holds = 0;
  for (const exp::DecisionRecord& d : res.decisions) {
    EXPECT_NE(d.arm, cfg.control_arm);
    EXPECT_LT(d.arm, cfg.arms.size());
    EXPECT_EQ(d.arm_name, cfg.arms[d.arm].name);
    if (d.action == exp::Action::kHold) ++initial_holds;
  }
  EXPECT_EQ(initial_holds, cfg.arms.size() - 1);
  // Latched final state is reflected in the last snapshot.
  for (std::size_t a = 0; a < cfg.arms.size(); ++a) {
    EXPECT_EQ(res.snapshots.back().arms[a].state, res.final_state[a]);
  }
}

TEST(ExperimentService, DriftAlertQuarantinesInjectedShiftWindow) {
  exp::ServiceConfig cfg = small_config();
  cfg.arrivals.rate_per_sec = 40.0;
  cfg.snapshot_every = sim::Time::seconds(30);
  cfg.max_connections = 12000;  // ~10 windows at the mean rate
  cfg.cusum.calibration = 4;
  cfg.cusum.h = 4.0;
  workload::RegimeShift shift;
  shift.at = sim::Time::seconds(150);
  shift.loss_scale = 8.0;
  cfg.regimes.shifts.push_back(shift);

  workload::WebWorkload pop;
  const exp::ServiceResult res = exp::ExperimentService(pop, cfg).run();

  ASSERT_GE(res.alerts_total, 1u);
  ASSERT_FALSE(res.alerts.empty());
  for (const exp::AlertRecord& a : res.alerts) {
    // Everything prr_inspect needs to replay the quarantined window.
    EXPECT_EQ(a.seed, cfg.seed);
    EXPECT_GT(a.connections, 0u);
    EXPECT_LE(a.first_connection + a.connections, res.admitted);
    EXPECT_EQ(a.loss_scale, 8.0);
    EXPECT_GE(a.stat, a.threshold);
    EXPECT_LT(a.arm, cfg.arms.size());
    EXPECT_LT(a.window, res.windows);
    // The shift is at 150s: no alert should implicate a pre-shift
    // window (windows are 30s, so window index >= 5).
    EXPECT_GE(a.t_s, 150.0);
  }
  // Alerts are also control-plane trace records for the timeline.
  std::size_t alert_records = 0;
  for (const obs::TraceRecord& r : res.control_records) {
    if (r.type == obs::TraceType::kServiceAlert) ++alert_records;
  }
  EXPECT_EQ(alert_records, static_cast<std::size_t>(res.alerts_total));
}

TEST(ExperimentService, SequentialStateGrowsOneObservationPerWindow) {
  const exp::ServiceConfig cfg = small_config();
  workload::WebWorkload pop;
  const exp::ServiceResult res = exp::ExperimentService(pop, cfg).run();
  for (const exp::ScoreboardSnapshot& s : res.snapshots) {
    for (std::size_t a = 0; a < s.arms.size(); ++a) {
      if (a == cfg.control_arm) {
        EXPECT_TRUE(s.arms[a].cs.empty());
        continue;
      }
      ASSERT_EQ(s.arms[a].cs.size(),
                static_cast<std::size_t>(exp::ServiceMetric::kCount));
      for (const exp::CsSummary& c : s.arms[a].cs) {
        EXPECT_EQ(c.n, s.window + 1);
      }
    }
  }
}

}  // namespace
