// Unit tests for the standalone PRR module against Algorithm 2 of the
// paper and the §4.3 properties.
#include "core/prr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "sim/rng.h"

namespace prr::core {
namespace {

constexpr uint32_t kMss = 1000;

TEST(PrrState, EntryInitializesStateVariables) {
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  EXPECT_TRUE(prr.in_recovery());
  EXPECT_EQ(prr.recover_fs(), 20 * kMss);
  EXPECT_EQ(prr.ssthresh(), 10 * kMss);
  EXPECT_EQ(prr.prr_delivered(), 0u);
  EXPECT_EQ(prr.prr_out(), 0u);
  EXPECT_EQ(prr.exit_cwnd(), 10 * kMss);
}

TEST(PrrState, ProportionalHalvingSendsOnAlternateAcks) {
  // Reno: ssthresh = FlightSize/2. The byte-exact allowance is 500 per
  // 1000-byte delivery; a sender that quantizes to whole MSS segments
  // (as ours does) therefore transmits on alternate ACKs — the paper's
  // Fig 2 behaviour.
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  uint64_t pipe = 15 * kMss;  // 4 lost + 1 SACKed at entry
  int segments_sent = 0;
  for (int i = 0; i < 8; ++i) {
    const uint64_t sndcnt = prr.on_ack(kMss, pipe);
    EXPECT_EQ(sndcnt, (i % 2 == 0) ? kMss / 2 : kMss) << "ack " << i;
    if (sndcnt >= kMss) {
      // Room for a whole segment: send it.
      ++segments_sent;
      prr.on_data_sent(kMss);
      // a send replaces the SACKed segment in flight, pipe unchanged
    } else {
      pipe -= kMss;  // delivered without replacement
    }
  }
  EXPECT_EQ(segments_sent, 4);  // one per two ACKs
}

TEST(PrrState, CubicRatioSendsSevenPerTen) {
  // The paper: with CUBIC's 30% reduction, PRR spaces "seven new segments
  // for every ten incoming ACKs".
  PrrState prr;
  prr.enter_recovery(10 * kMss, 7 * kMss, kMss);
  uint64_t out = 0;
  const uint64_t pipe = 9 * kMss;  // stays above ssthresh
  for (int i = 0; i < 10; ++i) {
    const uint64_t sndcnt = prr.on_ack(kMss, pipe);
    prr.on_data_sent(sndcnt);
    out += sndcnt;
  }
  EXPECT_EQ(out, 7 * kMss);
}

TEST(PrrState, ProportionalConvergesToSsthresh) {
  // When prr_delivered reaches RecoverFS, prr_out reaches ssthresh.
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  for (int i = 0; i < 20; ++i) {
    const uint64_t sndcnt = prr.on_ack(kMss, 15 * kMss);
    prr.on_data_sent(sndcnt);
  }
  EXPECT_EQ(prr.prr_delivered(), 20 * kMss);
  EXPECT_EQ(prr.prr_out(), 10 * kMss);
}

TEST(PrrState, SlowStartModeWhenPipeBelowSsthresh) {
  PrrState prr(ReductionBound::kSlowStart);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  // Heavy loss: pipe collapses below ssthresh.
  const uint64_t sndcnt = prr.on_ack(kMss, 4 * kMss);
  EXPECT_FALSE(prr.in_proportional_mode());
  // SSRB: MAX(delivered - out, DeliveredData) + MSS = 2*MSS, bounded by
  // ssthresh - pipe = 6*MSS.
  EXPECT_EQ(sndcnt, 2 * kMss);
}

TEST(PrrState, SlowStartModeNeverOvershootsSsthresh) {
  PrrState prr(ReductionBound::kSlowStart);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  // pipe just below ssthresh: room of 1 MSS limits the send.
  const uint64_t sndcnt = prr.on_ack(5 * kMss, 9 * kMss);
  EXPECT_EQ(sndcnt, kMss);
  EXPECT_EQ(prr.cwnd(), 10 * kMss);
}

TEST(PrrState, BanksMissedOpportunitiesDuringStall) {
  // §4.3 property 3: during an application stall prr_out falls behind;
  // when the app catches up the burst is bounded by
  // prr_delivered - prr_out (+1 MSS in slow-start mode).
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  // 6 ACKs arrive but the app has nothing to send: nothing goes out.
  uint64_t banked = 0;
  for (int i = 0; i < 6; ++i) banked = prr.on_ack(kMss, 15 * kMss);
  // The allowance accumulated: ceil(6 * 10/20) = 3 MSS and none sent.
  EXPECT_EQ(banked, 3 * kMss);
  EXPECT_EQ(prr.prr_out(), 0u);
  // App catches up: send the whole banked allowance at once.
  prr.on_data_sent(banked);
  EXPECT_EQ(prr.prr_out(), 3 * kMss);
}

TEST(PrrState, ConservativeBoundIsPacketConserving) {
  PrrState prr(ReductionBound::kConservative);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  // CRB: in the bounded mode, never send more than delivered.
  const uint64_t sndcnt = prr.on_ack(kMss, 4 * kMss);
  EXPECT_EQ(sndcnt, kMss);
}

TEST(PrrState, UnlimitedBoundFillsHoleAtOnce) {
  PrrState prr(ReductionBound::kUnlimited);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  // UB: jump straight to ssthresh like RFC 3517 (bursty).
  const uint64_t sndcnt = prr.on_ack(kMss, 4 * kMss);
  EXPECT_EQ(sndcnt, 6 * kMss);
}

TEST(PrrState, CwndIsPipePlusSndcnt) {
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  const uint64_t pipe = 15 * kMss;
  const uint64_t sndcnt = prr.on_ack(kMss, pipe);
  EXPECT_EQ(prr.cwnd(), pipe + sndcnt);
}

TEST(PrrState, ZeroDeliveredProducesNoSend) {
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  EXPECT_EQ(prr.on_ack(0, 15 * kMss), 0u);
}

TEST(PrrState, SndcntNeverNegative) {
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  prr.on_data_sent(5 * kMss);  // overshoot (e.g. the forced retransmit)
  // target < prr_out: clamped to zero, not negative.
  EXPECT_EQ(prr.on_ack(kMss, 15 * kMss), 0u);
}

TEST(PrrState, LeaveRecoveryClearsFlag) {
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  prr.leave_recovery();
  EXPECT_FALSE(prr.in_recovery());
}

TEST(PrrState, ReentryResetsAccumulators) {
  PrrState prr;
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  prr.on_ack(5 * kMss, 15 * kMss);
  prr.on_data_sent(2 * kMss);
  prr.enter_recovery(8 * kMss, 4 * kMss, kMss);
  EXPECT_EQ(prr.prr_delivered(), 0u);
  EXPECT_EQ(prr.prr_out(), 0u);
  EXPECT_EQ(prr.recover_fs(), 8 * kMss);
}

TEST(PrrState, HandlesSubMssDeliveries) {
  PrrState prr;
  prr.enter_recovery(10 * kMss + 536, 5 * kMss, kMss);
  uint64_t out = 0, delivered = 0;
  for (int i = 0; i < 10; ++i) {
    const uint64_t d = (i % 2 == 0) ? 536 : kMss;
    delivered += d;
    const uint64_t sndcnt = prr.on_ack(d, 8 * kMss);
    prr.on_data_sent(sndcnt);
    out += sndcnt;
  }
  EXPECT_EQ(prr.prr_delivered(), delivered);
  EXPECT_LE(out, 2 * delivered);  // §4.3 property 4
}

TEST(PrrState, HugeWindowsDoNotOverflow) {
  PrrState prr;
  const uint64_t fs = 1ull << 40;  // ~1 TB in flight (stress arithmetic)
  prr.enter_recovery(fs, fs / 2, 1460);
  const uint64_t sndcnt = prr.on_ack(fs / 4, fs - fs / 4);
  EXPECT_LE(sndcnt, fs);
  EXPECT_GT(sndcnt, 0u);
}

// --- §4.3 property 4 as a parameterized sweep: for random delivery/pipe
// streams under every reduction bound, prr_out <= 2 * prr_delivered and
// (in bounded modes) pipe+sndcnt never exceeds max(pipe, ssthresh). ---
struct PropertyParams {
  ReductionBound bound;
  uint64_t seed;
};

class PrrPropertyTest : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(PrrPropertyTest, OutNeverExceedsTwiceDelivered) {
  const auto param = GetParam();
  if (param.bound == ReductionBound::kUnlimited) {
    GTEST_SKIP() << "UB deliberately bursts past the 2x bound (that is "
                    "what the ablation demonstrates)";
  }
  sim::Rng rng(param.seed);
  PrrState prr(param.bound);
  const uint64_t fs = 30 * kMss;
  prr.enter_recovery(fs, 15 * kMss, kMss);
  uint64_t pipe = 25 * kMss;
  for (int i = 0; i < 200; ++i) {
    // Random DeliveredData: 1 or 2 segments (dupacks and stretch ACKs; in
    // recovery every processed ACK reports at least one delivered MSS,
    // which is the premise of the paper's 2x bound).
    const uint64_t delivered = rng.uniform_int(1, 2) * kMss;
    const uint64_t sndcnt = prr.on_ack(delivered, pipe);
    // The sender may be app-limited: send only part of the allowance.
    const uint64_t sent = rng.bernoulli(0.3) ? sndcnt / 2 : sndcnt;
    prr.on_data_sent(sent);
    if (prr.prr_delivered() > 0) {
      EXPECT_LE(prr.prr_out(), 2 * prr.prr_delivered())
          << "iteration " << i;
    }
    // pipe evolves: deliveries drain, sends refill, random extra losses.
    pipe = pipe > delivered ? pipe - delivered : 0;
    pipe += sent;
    if (rng.bernoulli(0.1) && pipe > kMss) pipe -= kMss;
  }
}

TEST_P(PrrPropertyTest, ReductionBoundNeverOvershootsSsthresh) {
  // In the bounded (pipe <= ssthresh) mode, every variant's sndcnt is
  // capped by ssthresh - pipe: slow start rebuilds the pipe but never
  // pushes it past the congestion-control target.
  const auto param = GetParam();
  sim::Rng rng(param.seed);
  PrrState prr(param.bound);
  prr.enter_recovery(30 * kMss, 15 * kMss, kMss);
  uint64_t pipe = 25 * kMss;
  for (int i = 0; i < 500; ++i) {
    const uint64_t delivered = rng.uniform_int(0, 2) * kMss;
    const uint64_t sndcnt = prr.on_ack(delivered, pipe);
    if (pipe <= prr.ssthresh()) {
      EXPECT_LE(pipe + sndcnt, prr.ssthresh()) << "iteration " << i;
    }
    prr.on_data_sent(sndcnt);
    pipe = pipe > delivered ? pipe - delivered : 0;
    pipe += sndcnt;
    if (rng.bernoulli(0.15) && pipe > 2 * kMss) pipe -= 2 * kMss;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBounds, PrrPropertyTest,
    ::testing::Values(PropertyParams{ReductionBound::kSlowStart, 1},
                      PropertyParams{ReductionBound::kSlowStart, 2},
                      PropertyParams{ReductionBound::kSlowStart, 3},
                      PropertyParams{ReductionBound::kConservative, 1},
                      PropertyParams{ReductionBound::kConservative, 2},
                      PropertyParams{ReductionBound::kUnlimited, 1},
                      PropertyParams{ReductionBound::kUnlimited, 2}),
    [](const ::testing::TestParamInfo<PropertyParams>& info) {
      const char* bound =
          info.param.bound == ReductionBound::kSlowStart ? "SSRB"
          : info.param.bound == ReductionBound::kConservative ? "CRB"
                                                              : "UB";
      return std::string(bound) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace prr::core
