// Population models: determinism (common random numbers), distribution
// targets from the paper's Table 1 / §5.4, and structural sanity of the
// generated samples.
#include <gtest/gtest.h>

#include "workload/video_workload.h"
#include "workload/web_workload.h"

namespace prr::workload {
namespace {

TEST(WebWorkload, DeterministicPerSeed) {
  WebWorkload pop;
  auto a = pop.sample(sim::Rng(42).fork(7));
  auto b = pop.sample(sim::Rng(42).fork(7));
  EXPECT_EQ(a.rtt.ns(), b.rtt.ns());
  EXPECT_EQ(a.bandwidth.bits_per_second(), b.bandwidth.bits_per_second());
  EXPECT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    EXPECT_EQ(a.responses[i].bytes, b.responses[i].bytes);
    EXPECT_EQ(a.responses[i].gap_before.ns(), b.responses[i].gap_before.ns());
  }
  EXPECT_EQ(a.client_dsack, b.client_dsack);
  EXPECT_DOUBLE_EQ(a.loss.p_good_to_bad, b.loss.p_good_to_bad);
}

TEST(WebWorkload, DifferentConnectionsDiffer) {
  WebWorkload pop;
  auto a = pop.sample(sim::Rng(42).fork(1));
  auto b = pop.sample(sim::Rng(42).fork(2));
  // At least one of the main draws must differ.
  EXPECT_TRUE(a.rtt != b.rtt ||
              a.bandwidth.bits_per_second() !=
                  b.bandwidth.bits_per_second() ||
              a.responses.size() != b.responses.size());
}

TEST(WebWorkload, AggregatesMatchPaperTable1) {
  WebWorkload pop;
  sim::Rng root(7);
  double total_requests = 0, total_bytes = 0, total_rtt = 0, total_bw = 0;
  int dsack = 0, abandon = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto s = pop.sample(root.fork(static_cast<uint64_t>(i)));
    total_requests += static_cast<double>(s.responses.size());
    for (const auto& r : s.responses)
      total_bytes += static_cast<double>(r.bytes);
    total_rtt += s.rtt.ms_d();
    total_bw += s.bandwidth.mbps_d();
    dsack += s.client_dsack;
    abandon += s.client_abandons;
  }
  EXPECT_NEAR(total_requests / n, 3.1, 0.1);              // req/conn
  EXPECT_NEAR(total_bytes / total_requests / 1000, 7.5, 1.0);  // kB
  EXPECT_NEAR(total_bw / n, 1.9, 0.3);                    // Mbps
  // DSACK support is conditional on SACK: 0.96 * 0.85.
  EXPECT_NEAR(static_cast<double>(dsack) / n, 0.96 * 0.85, 0.03);
  EXPECT_NEAR(static_cast<double>(abandon) / n, 0.02, 0.01);
  EXPECT_GT(total_rtt / n, 50);
  EXPECT_LT(total_rtt / n, 400);
}

TEST(WebWorkload, SamplesAreStructurallySane) {
  WebWorkload pop;
  sim::Rng root(11);
  for (int i = 0; i < 2000; ++i) {
    auto s = pop.sample(root.fork(static_cast<uint64_t>(i)));
    EXPECT_GE(s.responses.size(), 1u);
    EXPECT_GE(s.rtt.ms(), 10);
    EXPECT_LE(s.rtt.ms(), 3000);
    EXPECT_GE(s.queue_packets, 40u);
    for (const auto& r : s.responses) {
      EXPECT_GT(r.bytes, 0u);
      EXPECT_LE(r.bytes, 500'000u);
    }
    // First response starts immediately; later ones have gaps.
    EXPECT_TRUE(s.responses[0].gap_before.is_zero());
    for (std::size_t j = 1; j < s.responses.size(); ++j) {
      EXPECT_GE(s.responses[j].gap_before, s.rtt);
    }
    if (s.loss.p_good_to_bad > 0) {
      EXPECT_LE(s.loss.p_good_to_bad, 0.08);
      EXPECT_GT(s.loss.loss_in_bad, 0);
    }
  }
}

TEST(VideoWorkload, SingleThrottledTransferPerConnection) {
  VideoWorkload pop;
  sim::Rng root(13);
  for (int i = 0; i < 500; ++i) {
    auto s = pop.sample(root.fork(static_cast<uint64_t>(i)));
    ASSERT_EQ(s.responses.size(), 1u);
    const auto& r = s.responses[0];
    EXPECT_GE(r.bytes, 200'000u);
    EXPECT_GT(r.chunk_bytes, 0u);       // throttled
    EXPECT_GT(r.burst_bytes, 0u);       // initial burst
    EXPECT_FALSE(r.chunk_interval.is_zero());
  }
}

TEST(VideoWorkload, AggregatesMatchPaperSection54) {
  VideoWorkload pop;
  sim::Rng root(17);
  double total_bytes = 0, total_rtt = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto s = pop.sample(root.fork(static_cast<uint64_t>(i)));
    total_bytes += static_cast<double>(s.responses[0].bytes);
    total_rtt += s.rtt.ms_d();
  }
  EXPECT_NEAR(total_bytes / n / 1e6, 2.3, 0.3);  // MB per transfer
  EXPECT_NEAR(total_rtt / n, 860, 120);          // ms
}

TEST(VideoWorkload, Deterministic) {
  VideoWorkload pop;
  auto a = pop.sample(sim::Rng(5).fork(3));
  auto b = pop.sample(sim::Rng(5).fork(3));
  EXPECT_EQ(a.responses[0].bytes, b.responses[0].bytes);
  EXPECT_EQ(a.rtt.ns(), b.rtt.ns());
}

}  // namespace
}  // namespace prr::workload
