// Sender-side pacing: transmissions are spread at ~cwnd/srtt instead of
// line-rate bursts; totals and correctness are unaffected.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

ConnectionConfig paced_config(bool pacing) {
  ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.cc = CcKind::kNewReno;
  cfg.sender.pacing = pacing;
  cfg.sender.handshake_rtt = 100_ms;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(10), 100_ms, 200);
  return cfg;
}

TEST(Pacing, SpreadsTheInitialWindow) {
  sim::Simulator sim;
  Connection conn(sim, paced_config(true), sim::Rng(1), nullptr, nullptr);
  std::vector<sim::Time> sends;
  conn.sender().on_transmit_hook = [&](uint64_t, uint32_t, bool) {
    sends.push_back(sim.now());
  };
  conn.write(10'000);  // exactly IW10
  sim.run(sim::Time::seconds(5));
  ASSERT_EQ(sends.size(), 10u);
  // Paced interval = srtt / (gain * cwnd_segs) = 100ms / 12.5 = 8 ms.
  EXPECT_EQ(sends[0].ms(), 0);
  EXPECT_GT(sends[9].ms(), 50);
  EXPECT_LT(sends[9].ms(), 100);  // still inside one RTT (gain > 1)
  EXPECT_TRUE(conn.sender().all_acked());
}

TEST(Pacing, UnpacedSenderBurstsAtLineRate) {
  sim::Simulator sim;
  Connection conn(sim, paced_config(false), sim::Rng(1), nullptr, nullptr);
  std::vector<sim::Time> sends;
  conn.sender().on_transmit_hook = [&](uint64_t, uint32_t, bool) {
    sends.push_back(sim.now());
  };
  conn.write(10'000);
  sim.run(sim::Time::seconds(5));
  ASSERT_EQ(sends.size(), 10u);
  EXPECT_EQ(sends[9].ms(), 0);  // all at once
}

TEST(Pacing, LossyTransferStillCompletes) {
  for (bool pacing : {false, true}) {
    sim::Simulator sim;
    Metrics m;
    Connection conn(sim, paced_config(pacing), sim::Rng(2), &m, nullptr);
    conn.path().data_link().set_loss_model(
        std::make_unique<net::BernoulliLoss>(0.04, sim::Rng(3)));
    conn.write(400'000);
    sim.run(sim::Time::seconds(300));
    EXPECT_TRUE(conn.sender().all_acked()) << "pacing=" << pacing;
    EXPECT_EQ(conn.receiver().rcv_nxt(), 400'000u);
  }
}

TEST(Pacing, PreventsQueueOverflowOnShallowBuffers) {
  // A 20-segment window into a 5-packet queue: the unpaced burst
  // overflows; pacing drains it through intact.
  auto run_with = [](bool pacing) {
    sim::Simulator sim;
    ConnectionConfig cfg = paced_config(pacing);
    cfg.sender.initial_cwnd_segments = 20;
    cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(2),
                                            100_ms, 5);
    Connection conn(sim, cfg, sim::Rng(4), nullptr, nullptr);
    conn.write(20'000);
    sim.run(sim::Time::seconds(60));
    return conn.path().data_link().stats().dropped_queue;
  };
  EXPECT_GT(run_with(false), 0u);
  EXPECT_EQ(run_with(true), 0u);
}

TEST(Pacing, TimerDoesNotLeakWhenIdle) {
  sim::Simulator sim;
  Connection conn(sim, paced_config(true), sim::Rng(5), nullptr, nullptr);
  conn.write(5'000);
  sim.run(sim::Time::seconds(10));
  EXPECT_TRUE(conn.sender().all_acked());
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace prr::tcp
