// TCP timestamps (RFC 7323) and Eifel spurious-retransmit detection
// (RFC 3522): echo semantics, unrestricted RTT sampling, and undo of
// spurious fast retransmissions and timeouts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/loss_model.h"
#include "net/reorder_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

net::Segment data(uint64_t seq, uint32_t tsval) {
  net::Segment s;
  s.seq = seq;
  s.len = kMss;
  s.has_ts = true;
  s.tsval = tsval;
  return s;
}

TEST(TimestampsReceiver, EchoesTsRecentOnAcks) {
  sim::Simulator sim;
  std::vector<net::Segment> acks;
  Receiver::Config cfg;
  cfg.timestamps = true;
  cfg.ack_every = 1;
  Receiver rx(sim, cfg, [&](net::Segment a) { acks.push_back(a); });
  rx.on_data(data(0, 111));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].has_ts);
  EXPECT_EQ(acks[0].tsecr, 111u);
  rx.on_data(data(kMss, 222));
  EXPECT_EQ(acks.back().tsecr, 222u);
}

TEST(TimestampsReceiver, OutOfOrderDataDoesNotUpdateTsRecent) {
  sim::Simulator sim;
  std::vector<net::Segment> acks;
  Receiver::Config cfg;
  cfg.timestamps = true;
  cfg.ack_every = 1;
  Receiver rx(sim, cfg, [&](net::Segment a) { acks.push_back(a); });
  rx.on_data(data(0, 100));
  rx.on_data(data(2 * kMss, 300));  // hole at kMss: OOO
  // RFC 7323: TS.Recent keeps the timestamp of the last in-order segment.
  EXPECT_EQ(acks.back().tsecr, 100u);
  rx.on_data(data(kMss, 200));  // fills the hole
  EXPECT_EQ(acks.back().tsecr, 200u);
}

TEST(TimestampsReceiver, NoTimestampWhenNotNegotiated) {
  sim::Simulator sim;
  std::vector<net::Segment> acks;
  Receiver::Config cfg;
  cfg.ack_every = 1;
  Receiver rx(sim, cfg, [&](net::Segment a) { acks.push_back(a); });
  rx.on_data(data(0, 111));
  EXPECT_FALSE(acks.back().has_ts);
}

TEST(TimestampWire, OptionCostsTwelveBytes) {
  net::Segment a;
  a.is_ack = true;
  const uint32_t plain = a.wire_size();
  a.has_ts = true;
  EXPECT_EQ(a.wire_size(), plain + 12);
}

class TimestampConnection : public ::testing::Test {
 protected:
  std::unique_ptr<Connection> make(sim::Simulator& sim, bool ts,
                                   Metrics* m) {
    ConnectionConfig cfg;
    cfg.sender.mss = kMss;
    cfg.sender.timestamps = ts;
    cfg.sender.cc = CcKind::kNewReno;
    cfg.sender.handshake_rtt = 100_ms;
    cfg.receiver.timestamps = ts;
    cfg.path =
        net::Path::Config::symmetric(util::DataRate::mbps(5), 100_ms, 200);
    return std::make_unique<Connection>(sim, cfg, sim::Rng(5), m, nullptr);
  }
};

TEST_F(TimestampConnection, RttSamplingWorksThroughRetransmissions) {
  // With timestamps, RTT samples keep flowing even when every ack covers
  // retransmitted data; srtt stays close to the real 100 ms path RTT.
  sim::Simulator sim;
  Metrics m;
  auto conn = make(sim, true, &m);
  conn->path().data_link().set_loss_model(
      std::make_unique<net::BernoulliLoss>(0.05, sim::Rng(9)));
  conn->write(400'000);
  sim.run(sim::Time::seconds(300));
  ASSERT_TRUE(conn->sender().all_acked());
  EXPECT_GT(conn->sender().rto_estimator().srtt().ms(), 80);
  EXPECT_LT(conn->sender().rto_estimator().srtt().ms(), 400);
}

TEST_F(TimestampConnection, EifelUndoesSpuriousFastRetransmit) {
  // Heavy reordering (no loss at all): dupacks trigger a spurious fast
  // retransmit; the echoed timestamp of the original's ACK reveals it.
  sim::Simulator sim;
  Metrics m;
  auto conn = make(sim, true, &m);
  conn->path().data_link().set_reorder_model(
      std::make_unique<net::RandomReorder>(0.05, 20_ms, 80_ms,
                                           sim::Rng(3)));
  conn->write(400'000);
  sim.run(sim::Time::seconds(300));
  ASSERT_TRUE(conn->sender().all_acked());
  if (m.retransmits_total > 0) {
    // Every retransmission was spurious (nothing was dropped): Eifel or
    // DSACK must have undone the reductions at least once.
    EXPECT_GT(m.undo_events + m.spurious_rto_undone, 0u);
  }
}

TEST_F(TimestampConnection, WithoutTimestampsSameScenarioStillCompletes) {
  sim::Simulator sim;
  Metrics m;
  auto conn = make(sim, false, &m);
  conn->path().data_link().set_reorder_model(
      std::make_unique<net::RandomReorder>(0.05, 20_ms, 80_ms,
                                           sim::Rng(3)));
  conn->write(400'000);
  sim.run(sim::Time::seconds(300));
  EXPECT_TRUE(conn->sender().all_acked());
}

TEST_F(TimestampConnection, DataSegmentsCarryTsval) {
  sim::Simulator sim;
  auto conn = make(sim, true, nullptr);
  bool saw_ts = false;
  // Peek at the wire through the trace hook on the ack path is not
  // enough; check receiver side by sampling the path sink directly.
  conn->path().set_data_sink([&](net::Segment s) {
    saw_ts = saw_ts || s.has_ts;
    conn->receiver().on_data(s);
  });
  conn->write(5 * kMss);
  sim.run(sim::Time::seconds(5));
  EXPECT_TRUE(saw_ts);
  EXPECT_TRUE(conn->sender().all_acked());
}

TEST_F(TimestampConnection, GenuineLossIsNotDeclaredSpurious) {
  // Regression: tsval is the *truncated* millisecond send time, so the
  // echo of a retransmission equals floor(tx_time). A naive sub-ms
  // comparison declares every genuine recovery spurious and undoes it,
  // looping recovery forever. With real (non-reordered) loss, timestamps
  // must produce the same recovery behaviour as no-timestamps.
  auto run_once = [this](bool ts) {
    sim::Simulator sim;
    Metrics m;
    auto conn = make(sim, ts, &m);
    conn->path().data_link().set_loss_model(
        std::make_unique<net::GilbertElliottLoss>(
            net::GilbertElliottLoss::Params{0.01, 0.33, 0.0, 0.9},
            sim::Rng(7)));
    conn->write(500'000);
    sim.run(sim::Time::seconds(300));
    EXPECT_TRUE(conn->sender().all_acked());
    return m;
  };
  Metrics with_ts = run_once(true);
  Metrics without_ts = run_once(false);
  // No undo storms: the broken comparison undid *every* recovery. The
  // occasional isolated undo is legitimate (e.g. a duplicate produced by
  // lost-retransmit detection racing a slow ACK).
  EXPECT_LE(with_ts.undo_events, 2u);
  // Retransmission counts in the same ballpark (same sample path).
  EXPECT_LT(with_ts.retransmits_total,
            without_ts.retransmits_total * 2 + 10);
}

}  // namespace
}  // namespace prr::tcp
