// Trace capture/rendering and the stats aggregates (RecoveryLog,
// LatencyTracker, Metrics arithmetic).
#include <gtest/gtest.h>

#include <sstream>

#include "stats/latency.h"
#include "stats/recovery_log.h"
#include "tcp/metrics.h"
#include "trace/timeseq.h"

namespace prr {
namespace {

using namespace prr::sim::literals;

trace::TraceEvent ev(sim::Time at, trace::EventKind k, uint64_t lo,
                     uint64_t hi) {
  return {at, k, lo, hi};
}

TEST(TimeSeqTrace, CsvFormat) {
  trace::TimeSeqTrace t;
  t.record(ev(10_ms, trace::EventKind::kSend, 0, 1000));
  t.record(ev(20_ms, trace::EventKind::kRetransmit, 0, 1000));
  t.record(ev(30_ms, trace::EventKind::kUnaAdvance, 1000, 1000));
  t.record(ev(30_ms, trace::EventKind::kSack, 2000, 3000));
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_ms,kind,seq_lo,seq_hi"), std::string::npos);
  EXPECT_NE(csv.find("10,send,0,1000"), std::string::npos);
  EXPECT_NE(csv.find("20,retransmit,0,1000"), std::string::npos);
  EXPECT_NE(csv.find("30,una,1000,1000"), std::string::npos);
  EXPECT_NE(csv.find("30,sack,2000,3000"), std::string::npos);
}

TEST(TimeSeqTrace, RetransmitQueries) {
  trace::TimeSeqTrace t;
  t.record(ev(10_ms, trace::EventKind::kSend, 0, 1000));
  t.record(ev(20_ms, trace::EventKind::kRetransmit, 0, 1000));
  t.record(ev(50_ms, trace::EventKind::kRetransmit, 1000, 2000));
  EXPECT_EQ(t.retransmits().size(), 2u);
  EXPECT_EQ(t.time_of_last_retransmit().ms(), 50);
}

TEST(TimeSeqTrace, LongestSendGap) {
  trace::TimeSeqTrace t;
  t.record(ev(0_ms, trace::EventKind::kSend, 0, 1000));
  t.record(ev(10_ms, trace::EventKind::kSend, 1000, 2000));
  t.record(ev(60_ms, trace::EventKind::kSend, 2000, 3000));
  EXPECT_EQ(t.longest_send_gap(0_ms, 60_ms).ms(), 50);
  // Trailing gap to the interval end counts too.
  EXPECT_EQ(t.longest_send_gap(0_ms, 200_ms).ms(), 140);
}

TEST(TimeSeqTrace, MaxBurstCountsWindowedSends) {
  trace::TimeSeqTrace t;
  for (int i = 0; i < 5; ++i)
    t.record(ev(sim::Time::microseconds(i * 100), trace::EventKind::kSend,
                static_cast<uint64_t>(i) * 1000,
                static_cast<uint64_t>(i + 1) * 1000));
  t.record(ev(100_ms, trace::EventKind::kSend, 5000, 6000));
  EXPECT_EQ(t.max_burst(1_ms), 5);
}

TEST(TimeSeqTrace, AsciiRenderEmpty) {
  trace::TimeSeqTrace t;
  EXPECT_EQ(t.render_ascii(), "(empty trace)\n");
}

TEST(RecoveryLogStats, SlowStartAfterFraction) {
  stats::RecoveryLog log;
  stats::RecoveryEvent e;
  e.mss = 1000;
  e.completed = true;
  e.slow_start_after = true;
  log.add(e);
  e.slow_start_after = false;
  log.add(e);
  e.completed = false;  // incomplete events excluded
  e.slow_start_after = true;
  log.add(e);
  EXPECT_DOUBLE_EQ(log.fraction_slow_start_after(), 0.5);
}

TEST(RecoveryLogStats, TimeoutFraction) {
  stats::RecoveryLog log;
  stats::RecoveryEvent e;
  e.mss = 1000;
  e.interrupted_by_timeout = true;
  log.add(e);
  e.interrupted_by_timeout = false;
  log.add(e);
  log.add(e);
  EXPECT_NEAR(log.fraction_with_timeout(), 1.0 / 3.0, 1e-9);
}

TEST(RecoveryLogStats, AppendMerges) {
  stats::RecoveryLog a, b;
  stats::RecoveryEvent e;
  e.mss = 1000;
  a.add(e);
  b.add(e);
  b.add(e);
  a.append(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(RecoveryLogStats, SegmentViews) {
  stats::RecoveryEvent e;
  e.mss = 1000;
  e.pipe_at_start = 15'000;
  e.ssthresh = 10'000;
  e.cwnd_at_exit = 8'000;
  e.cwnd_after_exit = 10'000;
  EXPECT_DOUBLE_EQ(e.pipe_minus_ssthresh_segs(), 5.0);
  EXPECT_DOUBLE_EQ(e.cwnd_minus_ssthresh_at_exit_segs(), -2.0);
  EXPECT_DOUBLE_EQ(e.cwnd_after_exit_segs(), 10.0);
}

TEST(LatencyTrackerStats, FiltersBySizeAndRetransmit) {
  stats::LatencyTracker t;
  stats::ResponseRecord r;
  r.completed = true;
  r.path_rtt_ms = 100;
  r.bytes = 5000;
  r.first_byte_sent = sim::Time::zero();
  r.last_byte_acked = 200_ms;
  r.had_retransmit = true;
  t.add(r);
  r.bytes = 900;
  r.had_retransmit = false;
  r.last_byte_acked = 110_ms;
  t.add(r);

  EXPECT_EQ(t.latency_ms().count(), 2u);
  EXPECT_EQ(t.latency_ms(stats::LatencyTracker::Filter::kWithRetransmit)
                .count(),
            1u);
  EXPECT_EQ(t.latency_ms(stats::LatencyTracker::Filter::kWithoutRetransmit)
                .count(),
            1u);
  EXPECT_EQ(t.latency_ms(stats::LatencyTracker::Filter::kAll, 4000).count(),
            1u);
  EXPECT_DOUBLE_EQ(t.fraction_with_retransmit(), 0.5);
}

TEST(LatencyTrackerStats, RttsTakenUsesPathRtt) {
  stats::LatencyTracker t;
  stats::ResponseRecord r;
  r.completed = true;
  r.path_rtt_ms = 100;
  r.bytes = 1000;
  r.first_byte_sent = sim::Time::zero();
  r.last_byte_acked = 450_ms;
  t.add(r);
  util::Samples s = t.rtts_taken();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 4.5);
}

TEST(LatencyTrackerStats, IncompleteExcluded) {
  stats::LatencyTracker t;
  stats::ResponseRecord r;
  r.completed = false;
  t.add(r);
  EXPECT_EQ(t.latency_ms().count(), 0u);
}

TEST(MetricsArithmetic, PlusEqualsAggregatesAllFields) {
  tcp::Metrics a, b;
  a.retransmits_total = 5;
  a.fast_retransmits = 3;
  b.retransmits_total = 7;
  b.timeouts_total = 2;
  b.undo_events = 1;
  b.spurious_rto_undone = 4;
  a += b;
  EXPECT_EQ(a.retransmits_total, 12u);
  EXPECT_EQ(a.fast_retransmits, 3u);
  EXPECT_EQ(a.timeouts_total, 2u);
  EXPECT_EQ(a.undo_events, 1u);
  EXPECT_EQ(a.spurious_rto_undone, 4u);
}

TEST(MetricsArithmetic, SummaryMentionsKeyCounters) {
  tcp::Metrics m;
  m.retransmits_total = 42;
  const std::string s = m.summary();
  EXPECT_NE(s.find("retx=42"), std::string::npos);
}

}  // namespace
}  // namespace prr
