// Randomized differential test for the scoreboard's incremental
// accounting: drive a scoreboard through random transmit / SACK /
// cumulative-ACK / retransmit / loss-marking / timeout sequences and
// check every O(1) tally — pipe(), total_sacked_bytes(),
// sacked_segment_count(), lost_segment_count(), any_sacked() — against a
// brute-force recomputation over records() after each operation.
#include "tcp/scoreboard.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace prr::tcp {
namespace {

constexpr uint32_t kMss = 1000;

struct Brute {
  uint64_t pipe = 0;
  uint64_t sacked_bytes = 0;
  int sacked_segs = 0;
  int lost_segs = 0;
  bool any_sacked = false;
};

Brute brute_force(const Scoreboard& sb) {
  Brute b;
  for (const SegRecord& r : sb.records()) {
    if (r.sacked) {
      b.sacked_bytes += r.len();
      ++b.sacked_segs;
      b.any_sacked = true;
      continue;
    }
    if (!r.lost) b.pipe += r.len();
    if (r.lost) ++b.lost_segs;
    if (r.retransmitted) b.pipe += r.len();
  }
  return b;
}

void check_counters(const Scoreboard& sb, const char* after, int step) {
  const Brute b = brute_force(sb);
  ASSERT_EQ(sb.pipe(), b.pipe) << after << " step " << step;
  ASSERT_EQ(sb.total_sacked_bytes(), b.sacked_bytes) << after << " step "
                                                     << step;
  ASSERT_EQ(sb.sacked_segment_count(), b.sacked_segs) << after << " step "
                                                      << step;
  ASSERT_EQ(sb.lost_segment_count(), b.lost_segs) << after << " step "
                                                  << step;
  ASSERT_EQ(sb.any_sacked(), b.any_sacked) << after << " step " << step;
}

net::Segment make_ack(uint64_t cum,
                      std::vector<net::SackBlock> sacks = {}) {
  net::Segment a;
  a.is_ack = true;
  a.ack = cum;
  a.sacks.assign(sacks.begin(), sacks.end());
  return a;
}

// One randomized episode: grow a window, then shower it with random
// operations, cross-checking the tallies after every single one.
void run_episode(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  sim::Rng rng(seed);
  Scoreboard sb(kMss);
  sb.reset(0);
  uint64_t snd_nxt = 0;
  sim::Time now = sim::Time::zero();

  for (int step = 0; step < 400; ++step) {
    now += sim::Time::milliseconds(1);
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    switch (op) {
      case 0:
      case 1:
      case 2: {  // transmit a burst of new segments
        const int burst = static_cast<int>(rng.uniform_int(1, 8));
        for (int i = 0; i < burst; ++i) {
          sb.on_transmit(snd_nxt, snd_nxt + kMss, now);
          snd_nxt += kMss;
        }
        check_counters(sb, "transmit", step);
        break;
      }
      case 3:
      case 4: {  // SACK a random run of whole segments (maybe with cum)
        if (sb.records().empty()) break;
        const auto& recs = sb.records();
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, recs.size() - 1));
        const std::size_t j = std::min(
            recs.size() - 1,
            i + static_cast<std::size_t>(rng.uniform_int(0, 3)));
        sb.on_ack(make_ack(sb.snd_una(), {{recs[i].start, recs[j].end}}),
                  now, rng.uniform_int(0, 1) == 0);
        check_counters(sb, "sack", step);
        break;
      }
      case 5: {  // cumulative ACK to a random record boundary
        if (sb.records().empty()) break;
        const auto& recs = sb.records();
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, recs.size() - 1));
        sb.on_ack(make_ack(recs[i].end), now, true);
        check_counters(sb, "cumulative ack", step);
        break;
      }
      case 6: {  // mark losses, then retransmit some candidates
        sb.update_loss_marks(static_cast<int>(rng.uniform_int(1, 4)),
                             rng.uniform_int(0, 1) == 0,
                             rng.uniform_int(0, 1) == 0);
        check_counters(sb, "update_loss_marks", step);
        const int n = static_cast<int>(rng.uniform_int(1, 4));
        for (int i = 0; i < n; ++i) {
          const SegRecord* cand = sb.next_retransmit_candidate();
          if (cand == nullptr) break;
          sb.on_retransmit(cand->start, now, snd_nxt,
                           rng.uniform_int(0, 1) == 0);
          check_counters(sb, "retransmit", step);
        }
        break;
      }
      case 7: {  // RTO: everything unSACKed is lost
        sb.on_timeout_mark_all_lost();
        check_counters(sb, "timeout", step);
        break;
      }
      case 8: {  // early-retransmit entry / F-RTO undo
        if (rng.uniform_int(0, 1) == 0) {
          sb.mark_first_hole_lost();
          check_counters(sb, "mark_first_hole_lost", step);
        } else {
          sb.clear_unretransmitted_loss_marks();
          check_counters(sb, "clear_unretransmitted_loss_marks", step);
        }
        break;
      }
      case 9: {  // occasionally reset (new recovery episode)
        if (rng.uniform_int(0, 9) == 0) {
          sb.reset(snd_nxt);
          check_counters(sb, "reset", step);
        }
        break;
      }
    }
  }
}

TEST(ScoreboardDifferential, RandomizedCountersMatchBruteForce) {
  for (uint64_t seed = 1; seed <= 25; ++seed) run_episode(seed);
}

TEST(ScoreboardDifferential, LostRetransmitDetectionKeepsCountersExact) {
  // Deliberately walk the lost-retransmission path: retransmit a hole,
  // then SACK data sent after the retransmission so the retransmit is
  // declared lost again (retransmitted -> false, lost stays true).
  Scoreboard sb(kMss);
  sb.reset(0);
  uint64_t snd_nxt = 0;
  for (int i = 0; i < 10; ++i) {
    sb.on_transmit(snd_nxt, snd_nxt + kMss, sim::Time::zero());
    snd_nxt += kMss;
  }
  // SACK 3..10 -> segments 0..2 become FACK-lost.
  sb.on_ack(make_ack(0, {{3 * kMss, 10 * kMss}}), sim::Time::zero(), true);
  sb.update_loss_marks(3, /*use_fack=*/true, /*in_recovery=*/true);
  check_counters(sb, "setup", 0);

  const SegRecord* cand = sb.next_retransmit_candidate();
  ASSERT_NE(cand, nullptr);
  sb.on_retransmit(cand->start, sim::Time::zero(), snd_nxt, true);
  check_counters(sb, "retransmit", 1);

  // New data beyond the retransmit marker, then SACK it: the retransmit
  // is deemed lost, and pipe must drop by exactly one segment again.
  const uint64_t pipe_before = sb.pipe();
  sb.on_transmit(snd_nxt, snd_nxt + kMss, sim::Time::zero());
  auto out = sb.on_ack(make_ack(0, {{snd_nxt, snd_nxt + kMss}}),
                       sim::Time::zero(), true);
  snd_nxt += kMss;
  EXPECT_EQ(out.lost_retransmits_detected, 1);
  check_counters(sb, "lost-retransmit detection", 2);
  // The probe segment was transmitted and immediately SACKed (net zero),
  // and the retransmission's pipe contribution is gone: down one segment.
  EXPECT_EQ(sb.pipe(), pipe_before - kMss);
}

}  // namespace
}  // namespace prr::tcp
