#include "util/quantiles.h"

#include <gtest/gtest.h>

#include "util/table.h"

namespace prr::util {
namespace {

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0);
  EXPECT_DOUBLE_EQ(s.min(), 0);
  EXPECT_DOUBLE_EQ(s.max(), 0);
}

TEST(Samples, BasicStats) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(Samples, MedianInterpolates) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.5);
}

TEST(Samples, QuantileEndpoints) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
}

TEST(Samples, QuantileUnsortedInput) {
  Samples s;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  s.add(0.0);  // adding after a query must re-sort
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
}

TEST(Samples, Fractions) {
  Samples s;
  for (double v : {1.0, 2.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.fraction_below(2.0), 0.25);
  EXPECT_DOUBLE_EQ(s.fraction_above(2.0), 0.25);
  EXPECT_DOUBLE_EQ(s.fraction_equal(2.0), 0.5);
}

TEST(Samples, Stddev) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0, 1000, 5);
  h.add(100);   // bucket 0
  h.add(250);   // bucket 1
  h.add(999);   // bucket 4
  h.add(-50);   // clamps to 0
  h.add(5000);  // clamps to 4
  auto b = h.buckets();
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0].count, 2u);
  EXPECT_EQ(b[1].count, 1u);
  EXPECT_EQ(b[4].count, 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(b[1].lo, 200);
  EXPECT_DOUBLE_EQ(b[1].hi, 400);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt_pct(0.125, 1), "12.5%");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

}  // namespace
}  // namespace prr::util
