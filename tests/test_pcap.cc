// PcapWriter: the emitted byte stream must be a structurally valid
// classic pcap (parsable global header, self-consistent record lengths,
// correct Ethernet/IP/TCP framing and option encoding).
#include "trace/pcap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "net/loss_model.h"
#include "obs/instrument.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace prr::trace {
namespace {

using namespace prr::sim::literals;

uint32_t rd32(const std::string& s, std::size_t off) {
  return static_cast<uint8_t>(s[off]) |
         static_cast<uint8_t>(s[off + 1]) << 8 |
         static_cast<uint8_t>(s[off + 2]) << 16 |
         static_cast<uint8_t>(s[off + 3]) << 24;
}
uint32_t rd32be(const std::string& s, std::size_t off) {
  return static_cast<uint8_t>(s[off]) << 24 |
         static_cast<uint8_t>(s[off + 1]) << 16 |
         static_cast<uint8_t>(s[off + 2]) << 8 |
         static_cast<uint8_t>(s[off + 3]);
}

struct ParsedCapture {
  std::size_t packets = 0;
  std::vector<std::size_t> record_offsets;
};

ParsedCapture parse(const std::string& blob) {
  ParsedCapture out;
  EXPECT_GE(blob.size(), 24u);
  EXPECT_EQ(rd32(blob, 0), 0xA1B2C3D4u);  // magic
  EXPECT_EQ(rd32(blob, 20), 1u);          // LINKTYPE_ETHERNET
  std::size_t off = 24;
  while (off + 16 <= blob.size()) {
    const uint32_t incl = rd32(blob, off + 8);
    const uint32_t orig = rd32(blob, off + 12);
    EXPECT_LE(incl, orig);
    out.record_offsets.push_back(off);
    off += 16 + incl;
    ++out.packets;
  }
  EXPECT_EQ(off, blob.size());  // no trailing garbage
  return out;
}

net::Segment data_seg(uint64_t seq, uint32_t len) {
  net::Segment s;
  s.seq = seq;
  s.len = len;
  return s;
}

TEST(Pcap, GlobalHeaderAndRecordsParse) {
  std::ostringstream os;
  PcapWriter w(os);
  w.record(data_seg(0, 1000), 1_ms, true);
  w.record(data_seg(1000, 1000), 2_ms, true);
  net::Segment ack;
  ack.is_ack = true;
  ack.ack = 2000;
  w.record(ack, 3_ms, false);
  const std::string blob = os.str();
  ParsedCapture cap = parse(blob);
  EXPECT_EQ(cap.packets, 3u);
  EXPECT_EQ(w.packets_written(), 3u);
}

TEST(Pcap, SnaplenTruncatesPayloadButKeepsOrigLen) {
  std::ostringstream os;
  PcapWriter::Config cfg;
  cfg.snap_payload = 16;
  PcapWriter w(os, cfg);
  w.record(data_seg(0, 1460), 1_ms, true);
  const std::string blob = os.str();
  const uint32_t incl = rd32(blob, 24 + 8);
  const uint32_t orig = rd32(blob, 24 + 12);
  EXPECT_EQ(orig - incl, 1460u - 16u);
}

TEST(Pcap, TcpHeaderCarriesWireSequenceNumbers) {
  std::ostringstream os;
  PcapWriter w(os);
  // A sequence beyond 2^32 must wrap on the wire.
  const uint64_t big_seq = (1ull << 32) + 5000;
  w.record(data_seg(big_seq, 100), 1_ms, true);
  const std::string blob = os.str();
  // Offsets: 24 pcap hdr + 16 rec hdr + 14 eth + 20 ip = 74; seq at +4.
  const std::size_t tcp_off = 24 + 16 + 14 + 20;
  EXPECT_EQ(rd32be(blob, tcp_off + 4), 5000u);
}

TEST(Pcap, SackBlocksEncodedAsOptions) {
  std::ostringstream os;
  PcapWriter w(os);
  net::Segment ack;
  ack.is_ack = true;
  ack.ack = 1000;
  ack.sacks.push_back({3000, 4000});
  ack.dsack = net::SackBlock{0, 1000};
  w.record(ack, 1_ms, false);
  const std::string blob = os.str();
  const std::size_t tcp_off = 24 + 16 + 14 + 20;
  // Find the SACK option (kind 5) in the options area.
  const std::size_t opts_off = tcp_off + 20;
  bool found = false;
  for (std::size_t i = opts_off; i + 2 < blob.size(); ++i) {
    if (static_cast<uint8_t>(blob[i]) == 5 &&
        static_cast<uint8_t>(blob[i + 1]) == 2 + 16) {
      found = true;
      // DSACK block first (RFC 2883 ordering).
      EXPECT_EQ(rd32be(blob, i + 2), 0u);
      EXPECT_EQ(rd32be(blob, i + 6), 1000u);
      EXPECT_EQ(rd32be(blob, i + 10), 3000u);
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Pcap, TimestampOptionEncoded) {
  std::ostringstream os;
  PcapWriter w(os);
  net::Segment seg = data_seg(0, 100);
  seg.has_ts = true;
  seg.tsval = 777;
  seg.tsecr = 555;
  w.record(seg, 1_ms, true);
  const std::string blob = os.str();
  const std::size_t opts_off = 24 + 16 + 14 + 20 + 20;
  bool found = false;
  for (std::size_t i = opts_off; i + 10 < blob.size(); ++i) {
    if (static_cast<uint8_t>(blob[i]) == 8 &&
        static_cast<uint8_t>(blob[i + 1]) == 10) {
      EXPECT_EQ(rd32be(blob, i + 2), 777u);
      EXPECT_EQ(rd32be(blob, i + 6), 555u);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Pcap, AttachedTapCapturesWholeConnection) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.handshake_rtt = 50_ms;
  cfg.path =
      net::Path::Config::symmetric(util::DataRate::mbps(4), 50_ms, 100);
  tcp::Connection conn(sim, cfg, sim::Rng(1), nullptr, nullptr);
  std::ostringstream os;
  PcapWriter w(os);
  obs::FlightRecorder recorder;
  obs::Instrument instrument(sim, conn, recorder, /*conn_id=*/0);
  w.attach(instrument);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::DeterministicLoss>(std::set<uint64_t>{2}));
  conn.write(10'000);
  sim.run(sim::Time::seconds(30));
  ASSERT_TRUE(conn.sender().all_acked());
  ParsedCapture cap = parse(os.str());
  // 10 data + 1 retransmit + the ACK stream: comfortably more than 15.
  EXPECT_GT(cap.packets, 15u);
  EXPECT_EQ(cap.packets, w.packets_written());
}

}  // namespace
}  // namespace prr::trace
