// Fast-recovery behaviour of the sender with each policy: entry rules,
// retransmission pacing, exit windows, DSACK undo, early retransmit, and
// recovery-event instrumentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tcp/sender.h"

namespace prr::tcp {
namespace {

using namespace prr::sim::literals;

constexpr uint32_t kMss = 1000;

struct Sent {
  uint64_t seq;
  uint32_t len;
  bool retx;
};

class SenderRecoveryTest : public ::testing::Test {
 protected:
  static SenderConfig config_for(RecoveryKind kind) {
    SenderConfig cfg;
    cfg.mss = kMss;
    cfg.initial_cwnd_segments = 20;
    cfg.cc = CcKind::kNewReno;
    cfg.recovery = kind;
    return cfg;
  }

  void make(SenderConfig cfg) {
    wire.clear();
    sender = std::make_unique<Sender>(
        sim, cfg,
        [this](net::Segment s) {
          wire.push_back({s.seq, s.len, s.is_retransmit});
        },
        &metrics, &rlog);
  }

  net::Segment ack(uint64_t cum, std::vector<net::SackBlock> sacks = {},
                   std::optional<net::SackBlock> dsack = std::nullopt) {
    net::Segment a;
    a.is_ack = true;
    a.ack = cum;
    a.sacks.assign(sacks.begin(), sacks.end());
    a.dsack = dsack;
    a.rwnd = 1 << 30;
    return a;
  }

  // Sends 20 segments and drops the first `losses`; feeds dupacks (one
  // SACK per arriving segment above the holes) until recovery triggers —
  // immediately for deep holes (FACK threshold), after dupthresh dupacks
  // for shallow ones.
  void enter_with_losses(int losses) {
    sender->write(20 * kMss);
    ASSERT_EQ(wire.size(), 20u);
    wire.clear();
    const uint64_t hole_end = static_cast<uint64_t>(losses) * kMss;
    for (int i = 0; i < 3 && sender->state() != TcpState::kRecovery; ++i) {
      sender->on_ack_segment(
          ack(0, {{hole_end, hole_end + (i + 1) * kMss}}));
    }
    ASSERT_EQ(sender->state(), TcpState::kRecovery);
  }

  int count_retx() const {
    int n = 0;
    for (const auto& s : wire) n += s.retx;
    return n;
  }

  sim::Simulator sim;
  Metrics metrics;
  stats::RecoveryLog rlog;
  std::unique_ptr<Sender> sender;
  std::vector<Sent> wire;
};

TEST_F(SenderRecoveryTest, FackEntersOnFirstSackWhenManyMissing) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(4);
  EXPECT_EQ(sender->state(), TcpState::kRecovery);
  EXPECT_EQ(metrics.fast_recovery_events, 1u);
  // The triggering ACK produced the fast retransmit of the first hole.
  ASSERT_GE(count_retx(), 1);
  EXPECT_EQ(wire[0].seq, 0u);
  EXPECT_TRUE(wire[0].retx);
}

TEST_F(SenderRecoveryTest, ClassicDupthreshEntryWithoutFack) {
  SenderConfig cfg = config_for(RecoveryKind::kPrr);
  cfg.use_fack = false;
  make(cfg);
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(ack(0, {{1000, 2000}}));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  sender->on_ack_segment(ack(0, {{1000, 3000}}));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  sender->on_ack_segment(ack(0, {{1000, 4000}}));
  EXPECT_EQ(sender->state(), TcpState::kRecovery);
}

TEST_F(SenderRecoveryTest, PrrPacesOneRetransmitPerTwoAcks) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(4);  // ssthresh = 10 (Reno halves 20)
  // The entry ACK already forced the first fast retransmit (RFC 6937:
  // sndcnt = MAX(1 MSS, sndcnt) on entry). Feed 8 more dupacks; PRR
  // (ratio 1/2) releases a segment once the byte allowance reaches a
  // full MSS: 8 ACKs at 500 B/ACK net allowance -> 3 more transmissions
  // (the forced entry send consumed one segment of allowance).
  int sent_after_entry = 0;
  int max_per_ack = 0;
  for (int i = 0; i < 8; ++i) {
    wire.clear();
    const uint64_t sacked_to = (4 + 2 + i) * kMss;
    sender->on_ack_segment(ack(0, {{4 * kMss, sacked_to}}));
    sent_after_entry += static_cast<int>(wire.size());
    max_per_ack = std::max(max_per_ack, static_cast<int>(wire.size()));
  }
  EXPECT_EQ(sent_after_entry, 3);
  EXPECT_LE(max_per_ack, 1);  // never more than one segment per ACK here
}

TEST_F(SenderRecoveryTest, PrrExitsAtSsthresh) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(4);
  for (int i = 0; i < 15; ++i) {
    sender->on_ack_segment(
        ack(0, {{4 * kMss, (6 + i) * kMss}}));
  }
  // Retransmits delivered: cumulative ACK completes recovery.
  sender->on_ack_segment(ack(20 * kMss));
  EXPECT_EQ(sender->state(), TcpState::kOpen);
  EXPECT_EQ(sender->cwnd_bytes(), sender->ssthresh_bytes());
  ASSERT_EQ(rlog.count(), 1u);
  EXPECT_TRUE(rlog.events()[0].completed);
  EXPECT_EQ(rlog.events()[0].cwnd_after_exit, sender->ssthresh_bytes());
}

TEST_F(SenderRecoveryTest, LinuxExitsAtPipePlusOne) {
  make(config_for(RecoveryKind::kLinuxRateHalving));
  enter_with_losses(4);
  for (int i = 0; i < 15; ++i) {
    sender->on_ack_segment(ack(0, {{4 * kMss, (6 + i) * kMss}}));
  }
  sender->on_ack_segment(ack(20 * kMss));
  EXPECT_EQ(sender->state(), TcpState::kOpen);
  // Everything was delivered: pipe is 0, so cwnd collapses to ~1 MSS —
  // the paper's "slow start after recovery" problem.
  EXPECT_LE(sender->cwnd_bytes(), 2 * kMss);
  EXPECT_LT(sender->cwnd_bytes(), sender->ssthresh_bytes());
}

TEST_F(SenderRecoveryTest, Rfc3517SendsBurstWhenPipeCollapses) {
  make(config_for(RecoveryKind::kRfc3517));
  sender->write(20 * kMss);
  wire.clear();
  // Catastrophic loss: only segments 17-20 arrive; the first SACK already
  // reveals 16 missing. pipe collapses far below ssthresh = 10, and the
  // very first in-recovery ACK opens a cwnd - pipe hole that RFC 3517
  // fills with one multi-segment retransmission burst.
  sender->on_ack_segment(ack(0, {{16 * kMss, 17 * kMss}}));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  // 17 fackets - dupthresh = 14 exposed holes; pipe ~ 3 vs cwnd = 10:
  // RFC 3517 fills the gap with a single burst.
  EXPECT_GE(count_retx(), 5);
}

TEST_F(SenderRecoveryTest, Rfc3517EntryBurstRecordedInEventLog) {
  make(config_for(RecoveryKind::kRfc3517));
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(ack(0, {{16 * kMss, 17 * kMss}}));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  // Complete the recovery so the event is logged.
  sender->on_ack_segment(ack(20 * kMss));
  ASSERT_EQ(rlog.count(), 1u);
  EXPECT_GE(rlog.events()[0].max_burst_segments, 4u);
}

TEST_F(SenderRecoveryTest, PrrSlowStartPartAvoidsBurst) {
  make(config_for(RecoveryKind::kPrr));
  sender->write(20 * kMss);
  wire.clear();
  sender->on_ack_segment(ack(0, {{16 * kMss, 17 * kMss}}));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  wire.clear();
  sender->on_ack_segment(ack(0, {{16 * kMss, 19 * kMss}}));
  // Slow-start part: at most DeliveredData + 1 MSS per ACK (here 2 segs
  // delivered -> at most 3 segments).
  EXPECT_LE(static_cast<int>(wire.size()), 3);
}

TEST_F(SenderRecoveryTest, RecoveryEventRecordsPipeAndSsthresh) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(4);
  for (int i = 0; i < 15; ++i) {
    sender->on_ack_segment(ack(0, {{4 * kMss, (6 + i) * kMss}}));
  }
  sender->on_ack_segment(ack(20 * kMss));
  ASSERT_EQ(rlog.count(), 1u);
  const auto& e = rlog.events()[0];
  EXPECT_EQ(e.ssthresh, 10 * kMss);
  // At entry: 20 in flight, 1 SACKed, holes marked lost.
  EXPECT_LT(e.pipe_at_start, 20 * kMss);
  EXPECT_GT(e.pipe_at_start, 10 * kMss);
  EXPECT_EQ(e.mss, kMss);
  EXPECT_GE(e.retransmits, 4u);
  EXPECT_FALSE(e.slow_start_after);
}

TEST_F(SenderRecoveryTest, TimeoutDuringRecoveryLogsInterruptedEvent) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(4);
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  sim.run(5_s);  // no more ACKs: RTO interrupts recovery
  EXPECT_EQ(metrics.timeouts_in_recovery, 1u);
  ASSERT_GE(rlog.count(), 1u);
  EXPECT_TRUE(rlog.events()[0].interrupted_by_timeout);
  EXPECT_FALSE(rlog.events()[0].completed);
}

TEST_F(SenderRecoveryTest, DsackUndoRevertsCongestionState) {
  SenderConfig cfg = config_for(RecoveryKind::kPrr);
  cfg.use_fack = false;
  make(cfg);
  sender->write(20 * kMss);
  wire.clear();
  const uint64_t prior_cwnd = sender->cwnd_bytes();
  // Reordering-induced spurious recovery: three dupacks...
  sender->on_ack_segment(ack(0, {{1000, 2000}}));
  sender->on_ack_segment(ack(0, {{1000, 3000}}));
  sender->on_ack_segment(ack(0, {{1000, 4000}}));
  ASSERT_EQ(sender->state(), TcpState::kRecovery);
  ASSERT_EQ(count_retx(), 1);
  // ...then the cumulative ACK arrives (original was only delayed) and a
  // DSACK reports the retransmission as a duplicate.
  sender->on_ack_segment(ack(20 * kMss, {}, net::SackBlock{0, 1000}));
  EXPECT_EQ(metrics.undo_events, 1u);
  EXPECT_EQ(metrics.spurious_retransmits, 1u);
  EXPECT_EQ(sender->state(), TcpState::kOpen);
  EXPECT_GE(sender->cwnd_bytes(), prior_cwnd);
}

TEST_F(SenderRecoveryTest, DsackWithoutFullCoverageDoesNotUndo) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(4);  // genuine loss: retransmits are not spurious
  const uint64_t reduced_ssthresh = sender->ssthresh_bytes();
  // A stray DSACK for data we never retransmitted in this episode.
  sender->on_ack_segment(
      ack(0, {{4 * kMss, 6 * kMss}}, net::SackBlock{10 * kMss, 11 * kMss}));
  EXPECT_EQ(metrics.undo_events, 0u);
  EXPECT_EQ(sender->ssthresh_bytes(), reduced_ssthresh);
  EXPECT_EQ(metrics.dsacks_received, 1u);
}

TEST_F(SenderRecoveryTest, LostRetransmitCountsAndRetransmitsAgain) {
  make(config_for(RecoveryKind::kPrr));
  enter_with_losses(1);
  ASSERT_EQ(count_retx(), 1);
  // Give the application more data so new segments follow the
  // retransmission into the network.
  sender->write(5 * kMss);
  wire.clear();
  for (int i = 0; i < 12; ++i) {
    sender->on_ack_segment(ack(0, {{1 * kMss, (4 + i) * kMss}}));
  }
  // New data (beyond the original 20 kB) was sent during recovery.
  bool sent_new = false;
  uint64_t new_seq = 0;
  for (const auto& s : wire) {
    if (!s.retx && s.seq >= 20 * kMss) {
      sent_new = true;
      new_seq = s.seq;
    }
  }
  ASSERT_TRUE(sent_new);
  // SACK that new data while the hole persists: the retransmission of
  // segment 0 was itself lost.
  sender->on_ack_segment(
      ack(0, {{new_seq, new_seq + kMss}, {1 * kMss, 16 * kMss}}));
  EXPECT_GE(metrics.lost_retransmits_detected, 1u);
  EXPECT_GE(metrics.lost_fast_retransmits, 1u);
  // The hole is retransmitted again.
  int retx_of_head = 0;
  for (const auto& s : wire) retx_of_head += (s.retx && s.seq == 0);
  EXPECT_GE(retx_of_head, 1);
}

// ---- Early retransmit (§6) ----

class EarlyRetransmitTest : public SenderRecoveryTest {
 protected:
  void make_er(EarlyRetransmitMode mode) {
    SenderConfig cfg = config_for(RecoveryKind::kPrr);
    cfg.initial_cwnd_segments = 10;
    cfg.early_retransmit = mode;
    make(cfg);
  }

  // Two-segment response whose first segment is lost: only one dupack
  // ever arrives, so classic fast retransmit cannot trigger.
  void short_flow_tail_loss() {
    sender->write(2 * kMss);
    ASSERT_EQ(wire.size(), 2u);
    wire.clear();
    sender->on_ack_segment(ack(0, {{kMss, 2 * kMss}}));
  }
};

TEST_F(EarlyRetransmitTest, OffMeansNoEarlyRetransmit) {
  make_er(EarlyRetransmitMode::kOff);
  short_flow_tail_loss();
  sim.run(400_ms);
  EXPECT_EQ(count_retx(), 0);  // waits for the (1 s) RTO instead
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
}

TEST_F(EarlyRetransmitTest, NaiveErFiresImmediately) {
  make_er(EarlyRetransmitMode::kNaive);
  short_flow_tail_loss();
  EXPECT_EQ(sender->state(), TcpState::kRecovery);
  EXPECT_EQ(count_retx(), 1);
  EXPECT_EQ(metrics.er_triggered, 1u);
}

TEST_F(EarlyRetransmitTest, NaiveErSpuriousOnReordering) {
  make_er(EarlyRetransmitMode::kNaive);
  short_flow_tail_loss();
  ASSERT_EQ(count_retx(), 1);
  // The "lost" segment was only reordered; DSACK reports the duplicate.
  sender->on_ack_segment(ack(2 * kMss, {}, net::SackBlock{0, kMss}));
  EXPECT_EQ(metrics.undo_events, 1u);
  EXPECT_EQ(metrics.er_spurious, 1u);
}

TEST_F(EarlyRetransmitTest, MitigationOneBlocksAfterReordering) {
  make_er(EarlyRetransmitMode::kReorderMitigation);
  // Teach the connection that the path reorders.
  sender->write(6 * kMss);
  sender->on_ack_segment(ack(0, {{4 * kMss, 5 * kMss}}));
  sender->on_ack_segment(ack(6 * kMss));  // late arrival: reordering seen
  ASSERT_TRUE(sender->reordering_seen());
  wire.clear();
  // Now a short-flow tail loss: ER must not fire.
  sender->write(2 * kMss);
  wire.clear();
  sender->on_ack_segment(ack(6 * kMss, {{7 * kMss, 8 * kMss}}));
  EXPECT_EQ(count_retx(), 0);
  EXPECT_NE(sender->state(), TcpState::kRecovery);
}

TEST_F(EarlyRetransmitTest, DelayedErFiresAfterTimer) {
  make_er(EarlyRetransmitMode::kBothMitigations);
  short_flow_tail_loss();
  // Not immediate...
  EXPECT_EQ(count_retx(), 0);
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  // ...but the delayed timer (>= 25 ms) fires and recovers.
  sim.run(600_ms);
  EXPECT_EQ(count_retx(), 1);
  EXPECT_EQ(metrics.er_triggered, 1u);
  EXPECT_GT(sim.now().ms(), 24);
}

TEST_F(EarlyRetransmitTest, DelayedErCancelledByArrivingAck) {
  make_er(EarlyRetransmitMode::kBothMitigations);
  short_flow_tail_loss();
  EXPECT_EQ(count_retx(), 0);
  // The missing segment arrives slightly late: cumulative ACK cancels
  // the pending early retransmission.
  sender->on_ack_segment(ack(2 * kMss));
  sim.run(600_ms);
  EXPECT_EQ(count_retx(), 0);
  EXPECT_EQ(metrics.er_delayed_cancelled, 1u);
  EXPECT_EQ(metrics.er_triggered, 0u);
}

TEST_F(EarlyRetransmitTest, ErOnlyForSmallFlights) {
  SenderConfig cfg = config_for(RecoveryKind::kPrr);
  cfg.initial_cwnd_segments = 10;
  cfg.early_retransmit = EarlyRetransmitMode::kNaive;
  cfg.use_fack = false;  // keep FACK threshold entry out of the picture
  make(cfg);
  sender->write(6 * kMss);  // flight of 6: ER must not apply
  wire.clear();
  sender->on_ack_segment(ack(0, {{5 * kMss, 6 * kMss}}));
  EXPECT_EQ(sender->state(), TcpState::kDisorder);
  EXPECT_EQ(metrics.er_triggered, 0u);
}

TEST_F(EarlyRetransmitTest, ErSkippedWhenNewDataAvailable) {
  make_er(EarlyRetransmitMode::kNaive);
  sender->write(2 * kMss);
  wire.clear();
  sender->write(5 * kMss);  // plenty of new data: limited transmit instead
  wire.clear();
  sender->on_ack_segment(ack(0, {{kMss, 2 * kMss}}));
  EXPECT_EQ(metrics.er_triggered, 0u);
}

}  // namespace
}  // namespace prr::tcp
