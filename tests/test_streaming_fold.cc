// The streaming shard fold (exp/stream_fold.h + run_arm): shards are
// merged into the arm accumulator in ascending connection-id order as
// soon as their predecessor has merged, holding only a bounded reorder
// window of shards alive — and every aggregate stays byte-identical to
// the serial run at any thread count, any fold window, and in either
// stats mode.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "exp/stream_fold.h"
#include "workload/web_workload.h"

namespace prr::exp {
namespace {

// --- StreamFolder unit tests ---------------------------------------------

TEST(StreamFolder, FoldsInOrderDespiteOutOfOrderSubmission) {
  std::vector<uint64_t> folded;
  StreamFolder<uint64_t, std::function<void(uint64_t&&)>> folder(
      4, /*window=*/2, [&](uint64_t&& v) { folded.push_back(v); });

  uint64_t c = 0;
  ASSERT_TRUE(folder.claim(c));
  EXPECT_EQ(c, 0u);
  ASSERT_TRUE(folder.claim(c));
  EXPECT_EQ(c, 1u);

  // Chunk 1 lands first: it parks (its predecessor has not folded).
  folder.submit(1, 101);
  EXPECT_EQ(folder.folded(), 0u);
  // Chunk 0 lands: both fold, in order.
  folder.submit(0, 100);
  EXPECT_EQ(folder.folded(), 2u);

  ASSERT_TRUE(folder.claim(c));
  EXPECT_EQ(c, 2u);
  folder.submit(2, 102);
  ASSERT_TRUE(folder.claim(c));
  EXPECT_EQ(c, 3u);
  folder.submit(3, 103);

  EXPECT_FALSE(folder.claim(c)) << "all chunks claimed";
  EXPECT_EQ(folded, (std::vector<uint64_t>{100, 101, 102, 103}));
}

TEST(StreamFolder, ClaimBlocksUntilWindowOpens) {
  // window=1: a second chunk cannot be claimed until chunk 0 folds.
  StreamFolder<int, std::function<void(int&&)>> folder(
      3, /*window=*/1, [](int&&) {});
  uint64_t c = 0;
  ASSERT_TRUE(folder.claim(c));
  ASSERT_EQ(c, 0u);

  std::atomic<bool> second_claimed{false};
  std::thread t([&] {
    uint64_t c2 = 0;
    ASSERT_TRUE(folder.claim(c2));
    EXPECT_EQ(c2, 1u);
    second_claimed.store(true);
    folder.submit(1, 1);
  });
  // The claim above must park until this submit folds chunk 0.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_claimed.load());
  folder.submit(0, 0);
  t.join();
  EXPECT_TRUE(second_claimed.load());
  EXPECT_EQ(folder.folded(), 2u);
}

TEST(StreamFolder, ManyWorkersBoundedPending) {
  // 8 workers race over 64 chunks with a window of 4: the fold sees every
  // chunk exactly once, in order, and never parks more than window + a
  // claimant's in-flight shard per worker.
  const uint64_t kChunks = 64, kWindow = 4;
  const int kWorkers = 8;
  std::vector<uint64_t> folded;
  StreamFolder<uint64_t, std::function<void(uint64_t&&)>> folder(
      kChunks, kWindow, [&](uint64_t&& v) { folded.push_back(v); });
  std::vector<std::thread> pool;
  for (int w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&] {
      uint64_t c = 0;
      while (folder.claim(c)) folder.submit(c, uint64_t{c});
    });
  }
  for (auto& t : pool) t.join();
  ASSERT_EQ(folded.size(), kChunks);
  for (uint64_t i = 0; i < kChunks; ++i) EXPECT_EQ(folded[i], i);
  EXPECT_LE(folder.max_pending(), kWindow + kWorkers);
}

// --- streamed sweep vs serial --------------------------------------------

uint64_t digest(const ArmResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(r.metrics.data_segments_sent);
  mix(r.metrics.retransmits_total);
  mix(r.metrics.fast_retransmits);
  mix(r.metrics.timeouts_total);
  mix(r.total_workload_bytes);
  mix(r.connections_run);
  mix(r.recovery_log.count());
  mix(r.latency.count());
  mix(r.latency.completed_count());
  mix(static_cast<uint64_t>(r.total_network_transmit_time.ns()));
  mix(static_cast<uint64_t>(r.total_loss_recovery_time.ns()));
  mix(r.invariant_violations);
  mix(r.quarantined.size());
  for (const auto& e : r.recovery_log.events()) {
    mix(static_cast<uint64_t>(e.start.ns()));
    mix(e.cwnd_at_exit);
    mix(e.retransmits);
  }
  for (const auto& resp : r.latency.responses()) {
    mix(resp.bytes);
    mix(static_cast<uint64_t>(resp.last_byte_acked.ns()));
  }
  return h;
}

TEST(StreamingFold, ThreadAndWindowInvariantDigests) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 200;
  opts.seed = 77;
  opts.threads = 1;
  const uint64_t serial = digest(run_arm(pop, ArmConfig::prr_arm(), opts));
  for (int threads : {4, 8}) {
    for (uint64_t window : {1ull, 2ull, 64ull}) {
      opts.threads = threads;
      opts.fold_window = window;
      EXPECT_EQ(serial, digest(run_arm(pop, ArmConfig::prr_arm(), opts)))
          << "threads=" << threads << " window=" << window;
    }
  }
}

TEST(StreamingFold, TraceOnOffInvariantAcrossThreads) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 120;
  opts.seed = 31;
  opts.threads = 1;
  const uint64_t serial = digest(run_arm(pop, ArmConfig::prr_arm(), opts));
  opts.trace = true;
  opts.collect_episodes = true;
  for (int threads : {1, 4, 8}) {
    opts.threads = threads;
    EXPECT_EQ(serial, digest(run_arm(pop, ArmConfig::prr_arm(), opts)))
        << "traced, threads=" << threads;
  }
}

TEST(StreamingFold, ChaosQuarantineInvariantAcrossThreads) {
  workload::WebWorkload base;
  ChaosPopulation pop(base, ChaosSpec::everything().profile);
  RunOptions opts;
  opts.connections = 96;
  opts.seed = 7;
  opts.check_invariants = true;
  opts.inject_violation_connection = 41;
  opts.inject_violation_on_ack = 3;
  opts.threads = 1;
  const ArmResult serial = run_arm(pop, ArmConfig::prr_arm(), opts);
  ASSERT_EQ(serial.quarantined.size(), 1u);
  const uint64_t want = digest(serial);
  for (int threads : {4, 8}) {
    opts.threads = threads;
    const ArmResult par = run_arm(pop, ArmConfig::prr_arm(), opts);
    EXPECT_EQ(want, digest(par)) << "chaos, threads=" << threads;
    ASSERT_EQ(par.quarantined.size(), 1u);
    EXPECT_EQ(par.quarantined[0].connection_id,
              serial.quarantined[0].connection_id);
  }
}

// Chunk-sizing regression (ISSUE 7 satellite): n << threads*8 used to
// degenerate to one single-connection shard per connection; the ceil
// formula now caps num_chunks at threads*8 — and either way a 3-
// connection, 8-thread run must match serial byte for byte.
TEST(StreamingFold, TinyRunMatchesSerialByteForByte) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 3;
  opts.seed = 5;
  opts.threads = 1;
  const ArmResult serial = run_arm(pop, ArmConfig::prr_arm(), opts);
  opts.threads = 8;
  const ArmResult par = run_arm(pop, ArmConfig::prr_arm(), opts);
  static_assert(std::is_trivially_copyable_v<tcp::Metrics>);
  EXPECT_EQ(
      std::memcmp(&serial.metrics, &par.metrics, sizeof(tcp::Metrics)), 0);
  EXPECT_EQ(digest(serial), digest(par));
  EXPECT_EQ(par.connections_run, 3u);
  ASSERT_EQ(serial.latency.responses().size(),
            par.latency.responses().size());
}

// Bounded stats keep every counter and fraction bit-identical to the
// unbounded run; only the raw sample vectors are dropped.
TEST(StreamingFold, BoundedStatsMatchUnboundedCounters) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 150;
  opts.seed = 42;
  opts.threads = 4;
  const ArmResult full = run_arm(pop, ArmConfig::prr_arm(), opts);
  opts.bounded_stats = true;
  const ArmResult bounded = run_arm(pop, ArmConfig::prr_arm(), opts);

  static_assert(std::is_trivially_copyable_v<tcp::Metrics>);
  EXPECT_EQ(
      std::memcmp(&full.metrics, &bounded.metrics, sizeof(tcp::Metrics)),
      0);
  EXPECT_EQ(full.total_workload_bytes, bounded.total_workload_bytes);
  EXPECT_EQ(full.total_network_transmit_time,
            bounded.total_network_transmit_time);
  EXPECT_EQ(full.latency.count(), bounded.latency.count());
  EXPECT_EQ(full.latency.completed_count(),
            bounded.latency.completed_count());
  EXPECT_DOUBLE_EQ(full.latency.fraction_with_retransmit(),
                   bounded.latency.fraction_with_retransmit());
  EXPECT_EQ(full.recovery_log.count(), bounded.recovery_log.count());
  EXPECT_DOUBLE_EQ(full.recovery_log.fraction_with_timeout(),
                   bounded.recovery_log.fraction_with_timeout());
  EXPECT_DOUBLE_EQ(full.recovery_log.fraction_start_below_ssthresh(),
                   bounded.recovery_log.fraction_start_below_ssthresh());
  EXPECT_DOUBLE_EQ(full.recovery_log.fraction_slow_start_after(),
                   bounded.recovery_log.fraction_slow_start_after());
  // The memory contract: bounded mode keeps no per-sample vectors.
  EXPECT_TRUE(bounded.latency.responses().empty());
  EXPECT_TRUE(bounded.recovery_log.events().empty());
  EXPECT_GT(full.latency.responses().size(), 0u);
}

// The fork-per-shard primitive: disjoint [first_connection, +n) ranges
// sum to the whole run's aggregates exactly.
TEST(StreamingFold, DisjointIdRangesSumToWholeRun) {
  workload::WebWorkload pop;
  RunOptions opts;
  opts.connections = 90;
  opts.seed = 13;
  opts.threads = 1;
  const ArmResult whole = run_arm(pop, ArmConfig::prr_arm(), opts);

  tcp::Metrics summed;
  uint64_t workload_bytes = 0, latency_count = 0, recovery_count = 0;
  sim::Time transmit_ns;
  for (int shard = 0; shard < 3; ++shard) {
    RunOptions part = opts;
    part.first_connection = static_cast<uint64_t>(shard) * 30;
    part.connections = 30;
    const ArmResult r = run_arm(pop, ArmConfig::prr_arm(), part);
    summed.merge(r.metrics);
    workload_bytes += r.total_workload_bytes;
    latency_count += r.latency.count();
    recovery_count += r.recovery_log.count();
    transmit_ns = transmit_ns + r.total_network_transmit_time;
  }
  static_assert(std::is_trivially_copyable_v<tcp::Metrics>);
  EXPECT_EQ(std::memcmp(&whole.metrics, &summed, sizeof(tcp::Metrics)), 0);
  EXPECT_EQ(whole.total_workload_bytes, workload_bytes);
  EXPECT_EQ(whole.latency.count(), latency_count);
  EXPECT_EQ(whole.recovery_log.count(), recovery_count);
  EXPECT_EQ(whole.total_network_transmit_time, transmit_ns);
}

}  // namespace
}  // namespace prr::exp
