#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace prr::sim {
namespace {

// Mt64's incremental twist must reproduce the std::mt19937_64 output
// stream bit for bit — all recorded experiment digests depend on it.
// Spans multiple 312-word state blocks to cover the wrap-around words
// (i+1 and i+156 crossing the block boundary).
TEST(Mt64, MatchesStdMt19937_64Exactly) {
  for (uint64_t seed : {0ULL, 1ULL, 5489ULL, 0x9E3779B97F4A7C15ULL,
                        0xFFFFFFFFFFFFFFFFULL, 20110501ULL}) {
    std::mt19937_64 ref(seed);
    Mt64 lazy(seed);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(ref(), lazy()) << "seed=" << seed << " draw " << i;
    }
  }
}

// The open-coded uniform/bernoulli/exponential fast paths must emit the
// exact bits the std distributions emitted (every recorded experiment
// digest depends on the draw values, not just the engine stream). Each
// comparison drives a std distribution over a fresh std::mt19937_64
// clone of the Rng's engine position.
TEST(Rng, FastPathsMatchStdDistributionsExactly) {
  for (uint64_t seed : {0ULL, 42ULL, 20110501ULL, 0x9E3779B97F4A7C15ULL}) {
    std::mt19937_64 ref(seed);

    Rng uni(seed);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(std::uniform_real_distribution<double>(0.0, 1.0)(ref),
                uni.uniform())
          << "seed=" << seed << " draw " << i;
    }

    ref.seed(seed);
    Rng rng_range(seed);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(std::uniform_real_distribution<double>(2.5, 17.0)(ref),
                rng_range.uniform(2.5, 17.0));
    }

    ref.seed(seed);
    Rng bern(seed);
    // p spans 0.0 .. 1.0 inclusive. The degenerate endpoints must consume
    // NO engine draw (the early-outs predate the golden digests, so their
    // draw-skipping is frozen behavior); the reference mirrors that, and
    // the in-stream comparison catches any desynchronization either way.
    for (int i = 0; i < 500; ++i) {
      const double p = (i % 101) / 100.0;
      const bool expect = p <= 0.0 ? false
                          : p >= 1.0
                              ? true
                              : std::bernoulli_distribution(p)(ref);
      ASSERT_EQ(expect, bern.bernoulli(p))
          << "seed=" << seed << " draw " << i;
    }

    ref.seed(seed);
    Rng expo(seed);
    for (int i = 0; i < 500; ++i) {
      const double mean = 0.5 + i * 3.25;
      ASSERT_EQ(
          std::exponential_distribution<double>(1.0 / mean)(ref),
          expo.exponential(mean))
          << "seed=" << seed << " draw " << i;
    }
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.uniform() == b.uniform();
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(42);
  Rng f1 = root.fork(7);
  Rng f2 = Rng(42).fork(7);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(f1.uniform(), f2.uniform());

  // Different streams diverge.
  Rng g1 = root.fork(1), g2 = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += g1.uniform() == g2.uniform();
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork(3);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = r.uniform_int(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, LognormalWithMeanHitsMean) {
  Rng r(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.lognormal_with_mean(7500.0, 1.0);
  EXPECT_NEAR(sum / n, 7500.0, 500.0);
}

TEST(Rng, GeometricMeanAndSupport) {
  Rng r(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int v = r.geometric(3.1);
    EXPECT_GE(v, 1);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.1, 0.15);
  // Degenerate mean clamps to 1.
  EXPECT_EQ(r.geometric(0.5), 1);
}

TEST(Rng, ParetoScaleIsMinimum) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(10.0, 2.0), 10.0);
}

}  // namespace
}  // namespace prr::sim
