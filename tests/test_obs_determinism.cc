// Tracing must be pure observation: sweep aggregates are bit-identical
// with tracing on or off and at any worker-thread count, the registry's
// deterministic sections merge to the same bytes at any thread count,
// registry counters reconcile exactly with the tcp::Metrics accumulator,
// and quarantine/replay artifacts carry the flight-recorder tail.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "exp/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "workload/web_workload.h"

namespace prr {
namespace {

class Fnv {
 public:
  void mix(uint64_t v) {
    h_ ^= v;
    h_ *= 1099511628211ull;
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 1469598103934665603ull;
};

// Simulation-outcome fingerprint (metrics, per-response latency, per-
// recovery-event log, totals) — everything except the observability
// artifacts themselves.
uint64_t fingerprint(const exp::ArmResult& r) {
  Fnv f;
  const tcp::Metrics& m = r.metrics;
  f.mix(m.data_segments_sent);
  f.mix(m.bytes_sent);
  f.mix(m.retransmits_total);
  f.mix(m.fast_retransmits);
  f.mix(m.timeouts_total);
  f.mix(m.fast_recovery_events);
  f.mix(m.undo_events);
  f.mix(m.connections_aborted);
  for (const auto& resp : r.latency.responses()) {
    f.mix(resp.bytes);
    f.mix(static_cast<uint64_t>(resp.last_byte_acked.ns()));
  }
  for (const auto& ev : r.recovery_log.events()) {
    f.mix(static_cast<uint64_t>(ev.start.ns()));
    f.mix(static_cast<uint64_t>(ev.end.ns()));
    f.mix(ev.cwnd_at_exit);
    f.mix(ev.retransmits);
  }
  f.mix(static_cast<uint64_t>(r.total_network_transmit_time.ns()));
  f.mix(r.connections_run);
  f.mix(r.total_workload_bytes);
  return f.value();
}

exp::RunOptions base_opts() {
  exp::RunOptions opts;
  opts.connections = 120;
  opts.seed = 20110501;
  opts.threads = 1;
  return opts;
}

TEST(ObsDeterminism, AggregatesIdenticalTracingOnOrOff) {
  workload::WebWorkload pop;
  exp::RunOptions off = base_opts();
  exp::RunOptions on = base_opts();
  on.trace = true;
  on.trace_ring_records = 512;

  const exp::ArmResult r_off = exp::run_arm(pop, exp::ArmConfig::prr_arm(),
                                            off);
  const exp::ArmResult r_on = exp::run_arm(pop, exp::ArmConfig::prr_arm(),
                                           on);
  EXPECT_EQ(fingerprint(r_off), fingerprint(r_on));
  // The deterministic registry sections are also unaffected by tracing.
  EXPECT_EQ(r_off.registry.find_counter("tcp.retransmits_total")->value(),
            r_on.registry.find_counter("tcp.retransmits_total")->value());
  if (obs::trace_compiled_in()) {
    ASSERT_NE(r_on.registry.find_counter("obs.trace.records_written"),
              nullptr);
    EXPECT_GT(
        r_on.registry.find_counter("obs.trace.records_written")->value(),
        0u);
  }
}

TEST(ObsDeterminism, TracedAggregatesAndRegistryThreadCountInvariant) {
  workload::WebWorkload pop;
  exp::RunOptions opts = base_opts();
  opts.trace = true;
  opts.trace_ring_records = 512;

  const exp::ArmResult serial =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  const std::string serial_json = serial.registry.to_json();
  EXPECT_TRUE(obs::json_valid(serial_json));

  for (int threads : {4, 8}) {
    opts.threads = threads;
    const exp::ArmResult parallel =
        exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel))
        << "threads=" << threads;
    // Byte-identical registry export: counters, gauges, and histogram
    // buckets all merge deterministically.
    EXPECT_EQ(serial_json, parallel.registry.to_json())
        << "threads=" << threads;
  }
}

TEST(ObsDeterminism, RegistryReconcilesWithArmMetrics) {
  workload::WebWorkload pop;
  exp::RunOptions opts = base_opts();
  opts.trace = true;
  const exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);

  const obs::MetricsRegistry& reg = r.registry;
  ASSERT_NE(reg.find_counter("tcp.data_segments_sent"), nullptr);
  EXPECT_EQ(reg.find_counter("tcp.data_segments_sent")->value(),
            r.metrics.data_segments_sent);
  EXPECT_EQ(reg.find_counter("tcp.bytes_sent")->value(),
            r.metrics.bytes_sent);
  EXPECT_EQ(reg.find_counter("tcp.retransmits_total")->value(),
            r.metrics.retransmits_total);
  EXPECT_EQ(reg.find_counter("tcp.timeouts_total")->value(),
            r.metrics.timeouts_total);
  EXPECT_EQ(reg.find_counter("tcp.fast_recovery_events")->value(),
            r.metrics.fast_recovery_events);
  EXPECT_EQ(reg.find_counter("exp.connections_run")->value(),
            r.connections_run);
  // Histogram totals agree with their counter counterparts.
  EXPECT_EQ(reg.find_histogram("tcp.retransmits_per_conn")->sum(),
            r.metrics.retransmits_total);
  EXPECT_EQ(reg.find_histogram("tcp.retransmits_per_conn")->count(),
            r.connections_run);
}

TEST(ObsDeterminism, QuarantineCarriesTraceTail) {
  workload::WebWorkload pop;
  exp::RunOptions opts = base_opts();
  opts.connections = 30;
  opts.check_invariants = true;
  opts.inject_violation_connection = 11;
  opts.inject_violation_on_ack = 3;
  // The tail is captured when the connection finishes, and the injected
  // violation fires near the start: size the ring (and the kept tail) to
  // hold the connection's whole record stream so the kInvariant record
  // is still in it.
  opts.trace_ring_records = 1u << 16;
  opts.trace_tail_records = 1u << 16;

  const exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  ASSERT_EQ(r.quarantined.size(), 1u);
  const exp::QuarantineRecord& rec = r.quarantined[0];
  EXPECT_EQ(rec.connection_id, 11u);

  const std::string json = rec.trace_json();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  if (obs::trace_compiled_in()) {
    ASSERT_FALSE(rec.trace_tail.empty());
    // The tail ends at the failure: its last records include the
    // invariant-violation record the checker wrote.
    bool saw_violation = false;
    for (const auto& t : rec.trace_tail) {
      if (t.type == obs::TraceType::kInvariant) saw_violation = true;
      EXPECT_EQ(t.conn, 11u);
    }
    EXPECT_TRUE(saw_violation);
    EXPECT_NE(json.find("\"name\":\"invariant\""), std::string::npos);
  } else {
    EXPECT_TRUE(rec.trace_tail.empty());
  }

  // Replay reproduces the failure and returns the same tail shape.
  exp::Experiment experiment(pop, opts);
  const exp::ReplayResult replay =
      experiment.replay(exp::ArmConfig::prr_arm(), rec);
  EXPECT_TRUE(replay.reproduced(rec));
  if (obs::trace_compiled_in()) {
    EXPECT_FALSE(replay.trace_tail.empty());
  }
}

}  // namespace
}  // namespace prr
