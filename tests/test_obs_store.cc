// The columnar trace store (obs/store/): varint/zigzag primitives,
// randomized encode/decode round-trips across every record type and
// block boundary, truncated-file and corrupted-digest rejection, the
// capture-policy grammar, and the store-vs-live differentials — records
// persisted through a sweep must equal the live trace_connection()
// stream, and an EpisodeTable rebuilt from the store must reconcile
// field-exactly with the live-folded one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/flight_recorder.h"
#include "obs/query.h"
#include "obs/store/capture_policy.h"
#include "obs/store/store_format.h"
#include "obs/store/store_reader.h"
#include "obs/store/store_writer.h"
#include "sim/rng.h"
#include "workload/web_workload.h"

namespace prr {
namespace {

using obs::StoreBlockMeta;
using obs::StoreMeta;
using obs::StoreReader;
using obs::StoreShard;
using obs::StoreWriter;
using obs::TraceRecord;
using obs::TraceType;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "prr_store_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

TEST(StoreFormat, VarintRoundTrip) {
  std::vector<uint64_t> values = {0,       1,        127,     128,
                                  16383,   16384,    UINT64_MAX,
                                  1u << 21, (1ull << 63) - 1};
  sim::Mt64 rng(7);
  for (int i = 0; i < 200; ++i) values.push_back(rng());
  std::vector<uint8_t> buf;
  for (uint64_t v : values) obs::put_varint(buf, v);
  const uint8_t* p = buf.data();
  const uint8_t* end = p + buf.size();
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(obs::get_varint(&p, end, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, end);
}

TEST(StoreFormat, ZigzagRoundTrip) {
  std::vector<int64_t> values = {0,  1,  -1, 63, -64, INT64_MAX,
                                 INT64_MIN};
  sim::Mt64 rng(11);
  for (int i = 0; i < 200; ++i) values.push_back(static_cast<int64_t>(rng()));
  for (int64_t v : values) {
    EXPECT_EQ(obs::zigzag_decode(obs::zigzag_encode(v)), v);
  }
}

TEST(StoreFormat, VarintRejectsTruncation) {
  std::vector<uint8_t> buf;
  obs::put_varint(buf, UINT64_MAX);
  for (std::size_t keep = 0; keep + 1 < buf.size(); ++keep) {
    const uint8_t* p = buf.data();
    uint64_t v;
    EXPECT_FALSE(obs::get_varint(&p, buf.data() + keep, &v));
  }
}

TEST(StoreFormat, PathForArm) {
  EXPECT_EQ(obs::store_path_for_arm("sweep.prrstore", "RFC 3517"),
            "sweep.rfc_3517.prrstore");
  EXPECT_EQ(obs::store_path_for_arm("sweep.prrstore", "PRR"),
            "sweep.prr.prrstore");
  EXPECT_EQ(obs::store_path_for_arm("/tmp/out", "Linux"),
            "/tmp/out.linux.prrstore");
}

// Random records spanning every type, every field width, negative-ish
// time deltas via shuffled timestamps — the codec must be lossless.
std::vector<TraceRecord> random_records(std::size_t n, uint64_t conn,
                                        uint64_t seed) {
  sim::Mt64 rng(seed);
  std::vector<TraceRecord> recs(n);
  int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord& r = recs[i];
    // Mostly forward time with occasional large jumps; the codec must
    // not assume monotonicity (merged views could interleave).
    t += static_cast<int64_t>(rng() % 1000000) - 1000;
    r.at_ns = t;
    r.conn = static_cast<uint32_t>(conn);
    r.type = static_cast<TraceType>(
        rng() % static_cast<uint64_t>(TraceType::kCount));
    r.a = static_cast<uint8_t>(rng());
    r.b = static_cast<uint16_t>(rng());
    for (int k = 0; k < 6; ++k) {
      // Mix of small counters, byte-sized fields and full-width values
      // (bit-cast doubles in service records use all 64 bits).
      switch (rng() % 3) {
        case 0: r.f[k] = rng() % 64; break;
        case 1: r.f[k] = rng() % (1u << 24); break;
        default: r.f[k] = rng(); break;
      }
    }
  }
  return recs;
}

void expect_records_equal(const std::vector<TraceRecord>& a,
                          const std::vector<TraceRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ns, b[i].at_ns) << "record " << i;
    EXPECT_EQ(a[i].conn, b[i].conn) << "record " << i;
    EXPECT_EQ(a[i].type, b[i].type) << "record " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "record " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "record " << i;
    for (int k = 0; k < 6; ++k) {
      EXPECT_EQ(a[i].f[k], b[i].f[k]) << "record " << i << " f" << k;
    }
  }
}

TEST(StoreCodec, RoundTripRandomRecords) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto recs = random_records(500 + seed * 37, /*conn=*/seed, seed);
    StoreShard shard;
    obs::StoreEncoder enc;
    enc.encode(recs.data(), recs.size(), seed, obs::kBlockFull, &shard);
    ASSERT_EQ(shard.blocks.size(), 1u);
    std::vector<TraceRecord> back;
    ASSERT_TRUE(obs::decode_block(shard.bytes.data() + shard.blocks[0].offset,
                                  shard.blocks[0].bytes,
                                  shard.blocks[0].records, seed, &back));
    expect_records_equal(recs, back);
  }
}

TEST(StoreCodec, SplitsAtBlockBoundary) {
  const std::size_t n = obs::kMaxBlockRecords + 1234;
  const auto recs = random_records(n, /*conn=*/9, /*seed=*/99);
  StoreShard shard;
  obs::StoreEncoder enc;
  enc.encode(recs.data(), recs.size(), 9, obs::kBlockSampled, &shard);
  ASSERT_EQ(shard.blocks.size(), 2u);
  EXPECT_EQ(shard.blocks[0].records, obs::kMaxBlockRecords);
  EXPECT_EQ(shard.blocks[1].records, 1234u);
  std::vector<TraceRecord> back;
  for (const StoreBlockMeta& b : shard.blocks) {
    ASSERT_TRUE(obs::decode_block(shard.bytes.data() + b.offset, b.bytes,
                                  b.records, b.conn, &back));
    EXPECT_EQ(b.flags, obs::kBlockSampled);
  }
  expect_records_equal(recs, back);
}

TEST(StoreCodec, RejectsTruncatedAndPaddedPayload) {
  const auto recs = random_records(64, 1, 5);
  StoreShard shard;
  obs::StoreEncoder enc;
  enc.encode(recs.data(), recs.size(), 1, 0, &shard);
  const StoreBlockMeta& b = shard.blocks[0];
  std::vector<TraceRecord> back;
  // Every truncation point must fail, not crash or mis-decode.
  for (uint32_t keep = 0; keep < b.bytes; keep += 7) {
    back.clear();
    EXPECT_FALSE(obs::decode_block(shard.bytes.data(), keep, b.records, 1,
                                   &back));
  }
  // Trailing garbage is malformed too.
  shard.bytes.push_back(0);
  back.clear();
  EXPECT_FALSE(obs::decode_block(shard.bytes.data(), b.bytes + 1,
                                 b.records, 1, &back));
}

TEST(StoreCodec, RejectsInvalidTypeByte) {
  const auto recs = random_records(4, 1, 6);
  StoreShard shard;
  obs::StoreEncoder enc;
  enc.encode(recs.data(), recs.size(), 1, 0, &shard);
  // The type column sits right after 4 timestamp varints; stomp every
  // byte in turn with an out-of-range type value — decode must either
  // reject or produce only valid enum values, never out-of-range ones.
  for (std::size_t i = 0; i < shard.bytes.size(); ++i) {
    std::vector<uint8_t> bytes = shard.bytes;
    bytes[i] = 0xEE;
    std::vector<TraceRecord> back;
    if (obs::decode_block(bytes.data(), shard.blocks[0].bytes,
                          shard.blocks[0].records, 1, &back)) {
      for (const TraceRecord& r : back) {
        EXPECT_LT(static_cast<uint8_t>(r.type),
                  static_cast<uint8_t>(TraceType::kCount));
        EXPECT_LE(r.b, UINT16_MAX);
      }
    }
  }
}

TEST(StoreCodec, RingEncodeMarksTruncation) {
  obs::FlightRecorder ring(4);
  std::vector<TraceRecord> recs = random_records(6, 2, 8);
  for (const TraceRecord& r : recs) ring.write(r);
  StoreShard shard;
  obs::StoreEncoder enc;
  // write() itself is unconditional (PRR_TRACE is the compile-time gate
  // at instrumentation sites), so this works with tracing on or off.
  enc.encode(ring, 2, obs::kBlockFull, &shard);
  ASSERT_EQ(shard.blocks.size(), 1u);
  EXPECT_EQ(shard.blocks[0].records, 4u);  // oldest two fell out
  EXPECT_NE(shard.blocks[0].flags & obs::kBlockTruncated, 0);
  EXPECT_NE(shard.blocks[0].flags & obs::kBlockFull, 0);
  std::vector<TraceRecord> back;
  ASSERT_TRUE(obs::decode_block(shard.bytes.data(), shard.blocks[0].bytes,
                                4, 2, &back));
  expect_records_equal({recs.begin() + 2, recs.end()}, back);
}

StoreMeta test_meta() {
  StoreMeta meta;
  meta.seed = 42;
  meta.arm = "PRR";
  meta.policy = "sample=64,full=timeout";
  meta.scenario = "chaos/everything";
  return meta;
}

// Writes a two-connection store and returns its path.
std::string write_test_store(const std::string& name,
                             std::vector<TraceRecord>* conn3,
                             std::vector<TraceRecord>* conn7) {
  *conn3 = random_records(300, 3, 31);
  *conn7 = random_records(40, 7, 71);
  StoreShard shard;
  obs::StoreEncoder enc;
  enc.encode(conn3->data(), conn3->size(), 3, obs::kBlockSampled, &shard);
  enc.encode(conn7->data(), conn7->size(), 7, obs::kBlockFull, &shard);
  const std::string path = temp_path(name);
  StoreWriter writer;
  EXPECT_TRUE(writer.open(path, test_meta()));
  EXPECT_TRUE(writer.append_shard(shard));
  EXPECT_TRUE(writer.finish());
  return path;
}

TEST(StoreFile, WriteReadRoundTrip) {
  std::vector<TraceRecord> conn3, conn7;
  const std::string path = write_test_store("roundtrip.prrstore",
                                            &conn3, &conn7);
  StoreReader reader;
  std::string err;
  ASSERT_TRUE(StoreReader::open(path, &reader, &err)) << err;
  EXPECT_TRUE(reader.meta() == test_meta());
  ASSERT_EQ(reader.blocks().size(), 2u);
  EXPECT_EQ(reader.total_records(), conn3.size() + conn7.size());
  EXPECT_EQ(reader.connections(), (std::vector<uint64_t>{3, 7}));

  std::vector<TraceRecord> back;
  ASSERT_TRUE(reader.read_connection(3, &back));
  expect_records_equal(conn3, back);
  back.clear();
  ASSERT_TRUE(reader.read_connection(7, &back));
  expect_records_equal(conn7, back);
  back.clear();
  ASSERT_TRUE(reader.read_connection(5, &back));  // absent: ok, empty
  EXPECT_TRUE(back.empty());
  std::remove(path.c_str());
}

TEST(StoreFile, RejectsTruncationAnywhere) {
  std::vector<TraceRecord> conn3, conn7;
  const std::string path = write_test_store("trunc.prrstore",
                                            &conn3, &conn7);
  const std::string body = slurp(path);
  ASSERT_GT(body.size(), 64u);
  const std::string cut = temp_path("trunc_cut.prrstore");
  // A file cut anywhere — mid-header, mid-block, mid-index, mid-footer —
  // must be rejected at open, never half-decoded.
  for (std::size_t keep = 0; keep < body.size(); keep += 97) {
    spit(cut, body.substr(0, keep));
    StoreReader reader;
    std::string err;
    EXPECT_FALSE(StoreReader::open(cut, &reader, &err)) << "keep=" << keep;
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(StoreFile, RejectsCorruptedDigest) {
  std::vector<TraceRecord> conn3, conn7;
  const std::string path = write_test_store("corrupt.prrstore",
                                            &conn3, &conn7);
  const std::string body = slurp(path);
  const std::string bad = temp_path("corrupt_bit.prrstore");
  sim::Mt64 rng(13);
  for (int trial = 0; trial < 32; ++trial) {
    std::string flipped = body;
    // Flip one random bit outside the end magic (magic corruption is
    // caught structurally; digest corruption is what this pins).
    const std::size_t i = rng() % (flipped.size() - 8);
    flipped[i] = static_cast<char>(flipped[i] ^ (1u << (rng() % 8)));
    spit(bad, flipped);
    StoreReader reader;
    std::string err;
    EXPECT_FALSE(StoreReader::open(bad, &reader, &err))
        << "flipped byte " << i;
  }
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(CapturePolicy, ParseAcceptsGrammar) {
  obs::CapturePolicy p;
  std::string err;
  EXPECT_TRUE(obs::CapturePolicy::parse("all", &p, &err));
  EXPECT_TRUE(p.keeps_anything());
  EXPECT_TRUE(obs::CapturePolicy::parse("none", &p, &err));
  EXPECT_FALSE(p.keeps_anything());
  EXPECT_TRUE(obs::CapturePolicy::parse("sample=64,full=timeout", &p, &err));
  EXPECT_TRUE(p.keeps_anything());
  EXPECT_FALSE(p.needs_rto_interrupt());
  EXPECT_TRUE(obs::CapturePolicy::parse(
      "full=timeout|rto_interrupt|undo|invariant|abort", &p, &err));
  EXPECT_TRUE(p.needs_rto_interrupt());
  EXPECT_TRUE(obs::CapturePolicy::parse("recovery_ms>=12.5,retx>=3", &p,
                                        &err));
  EXPECT_TRUE(p.keeps_anything());
}

TEST(CapturePolicy, ParseRejectsGarbage) {
  obs::CapturePolicy p;
  std::string err;
  for (const char* bad :
       {"", "sample=0", "sample=", "sample=x", "full=", "full=bogus",
        "recovery_ms>=", "recovery_ms>=-1", "retx>=x", "wat", "all;none"}) {
    err.clear();
    EXPECT_FALSE(obs::CapturePolicy::parse(bad, &p, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(CapturePolicy, TriggersWinOverSampling) {
  obs::CapturePolicy p;
  std::string err;
  ASSERT_TRUE(obs::CapturePolicy::parse("sample=64,full=timeout", &p, &err));
  obs::CaptureStats s;
  s.conn = 12345;
  s.timeouts = 1;
  obs::CaptureDecision d = p.evaluate(s);
  EXPECT_TRUE(d.keep);
  EXPECT_TRUE(d.full);
  s.timeouts = 0;
  d = p.evaluate(s);
  EXPECT_EQ(d.keep, obs::capture_sampled(12345, 64));
  if (d.keep) {
    EXPECT_FALSE(d.full);
  }
}

TEST(CapturePolicy, SampleRateIsRoughlyOneInN) {
  int kept = 0;
  for (uint64_t id = 0; id < 64000; ++id) {
    if (obs::capture_sampled(id, 64)) ++kept;
  }
  EXPECT_GT(kept, 700);   // ~1000 expected
  EXPECT_LT(kept, 1300);
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_TRUE(obs::capture_sampled(id, 1));
  }
  EXPECT_FALSE(obs::capture_sampled(7, 0));
}

TEST(CriticalPath, SyntheticAttribution) {
  using sim::Time;
  const uint32_t conn = 5;
  std::vector<TraceRecord> recs;
  // enter: mss=1000 (b), f={flight, ssthresh, pipe, prior_cwnd, rp}
  recs.push_back(obs::make_record(Time::milliseconds(0), conn,
                                  TraceType::kEnterRecovery, 0, 1000,
                                  10000, 5000, 8000, 10000, 20000));
  // 1ms gap with pipe(8000) >= cwnd-proxy(5000): send-window limited.
  recs.push_back(obs::make_record(Time::milliseconds(1), conn,
                                  TraceType::kAck, 0, 0,
                                  1000, 5000, 3000, 5000, 1000, 9000));
  // 1ms gap, headroom 2000 >= mss, nothing just sent: app limited.
  recs.push_back(obs::make_record(Time::milliseconds(2), conn,
                                  TraceType::kTransmit, 1, 0,
                                  9000, 1000, 5000, 10000));
  // 1ms gap following a transmit: waiting for the ACK.
  recs.push_back(obs::make_record(Time::milliseconds(3), conn,
                                  TraceType::kAck, 0, 0,
                                  2000, 5000, 3000, 5000, 1000, 10000));
  // 2ms gap ending in an RTO: rto_wait; the RTO also ends the episode.
  recs.push_back(obs::make_record(Time::milliseconds(5), conn,
                                  TraceType::kRtoFired, 0, 0,
                                  2000, 10000, 5000, 0, 200000000, 0));
  // Post-episode gap must not be attributed.
  recs.push_back(obs::make_record(Time::milliseconds(50), conn,
                                  TraceType::kAck, 0, 0,
                                  3000, 5000, 0, 5000, 1000, 10000));

  const obs::CriticalPathReport rep =
      obs::attribute_critical_path(recs.data(), recs.size());
  EXPECT_EQ(rep.conn, conn);
  EXPECT_EQ(rep.episodes, 1u);
  EXPECT_EQ(rep.send_window_ns, Time::milliseconds(1).ns());
  EXPECT_EQ(rep.app_limited_ns, Time::milliseconds(1).ns());
  EXPECT_EQ(rep.waiting_for_ack_ns, Time::milliseconds(1).ns());
  EXPECT_EQ(rep.rto_wait_ns, Time::milliseconds(2).ns());
  EXPECT_EQ(rep.total_ns, Time::milliseconds(5).ns());
  EXPECT_EQ(rep.total_ns,
            rep.send_window_ns + rep.app_limited_ns +
                rep.waiting_for_ack_ns + rep.rto_wait_ns);
}

// --- live differentials ----------------------------------------------

exp::RunOptions store_opts(const std::string& store_name) {
  exp::RunOptions opts;
  opts.connections = 120;
  opts.seed = 20110501;
  opts.threads = 1;
  opts.trace_ring_records = 1u << 16;  // no wrap for these short conns
  opts.store_path = temp_path(store_name);
  opts.capture = "all";
  return opts;
}

TEST(StoreLive, RecordsMatchTraceConnection) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (PRR_TRACING=OFF)";
  }
  workload::WebWorkload pop;
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::RunOptions opts = store_opts("live_diff.prrstore");
  exp::run_arm(pop, arm, opts);

  const std::string path =
      obs::store_path_for_arm(opts.store_path, arm.name);
  StoreReader reader;
  std::string err;
  ASSERT_TRUE(StoreReader::open(path, &reader, &err)) << err;
  EXPECT_EQ(reader.meta().seed, opts.seed);
  EXPECT_EQ(reader.meta().arm, arm.name);
  EXPECT_EQ(reader.meta().policy, "all");
  const auto conns = reader.connections();
  ASSERT_EQ(conns.size(), 120u);  // capture=all keeps every connection

  // Spot-check several connections against the live listener capture.
  for (uint64_t id : {conns[0], conns[17], conns[63], conns.back()}) {
    std::vector<TraceRecord> stored;
    ASSERT_TRUE(reader.read_connection(id, &stored));
    const exp::TracedConnection live =
        exp::trace_connection(pop, arm, opts, id);
    expect_records_equal(live.records, stored);
  }
  std::remove(path.c_str());
}

TEST(StoreLive, EpisodesFromStoreReconcile) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (PRR_TRACING=OFF)";
  }
  workload::WebWorkload pop;
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::RunOptions opts = store_opts("episodes.prrstore");
  opts.collect_episodes = true;
  const exp::ArmResult live = exp::run_arm(pop, arm, opts);

  const std::string path =
      obs::store_path_for_arm(opts.store_path, arm.name);
  StoreReader reader;
  std::string err;
  ASSERT_TRUE(StoreReader::open(path, &reader, &err)) << err;
  obs::EpisodeTable from_store;
  ASSERT_TRUE(obs::episodes_from_store(reader, obs::QueryFilter{},
                                       &from_store, &err))
      << err;
  // Field-exact reconciliation: same table JSON, same stream counters.
  EXPECT_EQ(from_store.to_json(), live.episodes.to_json());
  EXPECT_EQ(from_store.stream().retransmits_total,
            live.metrics.retransmits_total);
  EXPECT_EQ(from_store.stream().timeouts_total, live.metrics.timeouts_total);
  EXPECT_EQ(from_store.stream().undo_events, live.metrics.undo_events);
  EXPECT_EQ(from_store.total(), live.metrics.fast_recovery_events);
  std::remove(path.c_str());
}

TEST(StoreLive, MergeOfRangeShardsIsByteIdentical) {
  workload::WebWorkload pop;
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::RunOptions opts = store_opts("full.prrstore");
  opts.capture = "sample=4,full=timeout";
  exp::run_arm(pop, arm, opts);
  const std::string full_path =
      obs::store_path_for_arm(opts.store_path, arm.name);

  // Same population as two disjoint id ranges (the fork-per-shard
  // protocol), merged by connection id.
  exp::RunOptions lo = opts;
  lo.connections = 50;
  lo.store_path = temp_path("lo.prrstore");
  exp::RunOptions hi = opts;
  hi.first_connection = 50;
  hi.connections = 70;
  hi.store_path = temp_path("hi.prrstore");
  exp::run_arm(pop, arm, lo);
  exp::run_arm(pop, arm, hi);

  const std::string merged = temp_path("merged.prrstore");
  std::string err;
  ASSERT_TRUE(obs::merge_store_files(
      {obs::store_path_for_arm(lo.store_path, arm.name),
       obs::store_path_for_arm(hi.store_path, arm.name)},
      merged, &err))
      << err;
  EXPECT_EQ(slurp(merged), slurp(full_path));

  // Meta mismatch (different seed) must be refused.
  exp::RunOptions other = lo;
  other.seed = 1;
  other.store_path = temp_path("other.prrstore");
  exp::run_arm(pop, arm, other);
  EXPECT_FALSE(obs::merge_store_files(
      {obs::store_path_for_arm(lo.store_path, arm.name),
       obs::store_path_for_arm(other.store_path, arm.name)},
      temp_path("bad_merge.prrstore"), &err));

  for (const std::string& p :
       {full_path, obs::store_path_for_arm(lo.store_path, arm.name),
        obs::store_path_for_arm(hi.store_path, arm.name),
        obs::store_path_for_arm(other.store_path, arm.name), merged}) {
    std::remove(p.c_str());
  }
}

TEST(StoreLive, AggregateAndSeriesQueries) {
  if (!obs::trace_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (PRR_TRACING=OFF)";
  }
  workload::WebWorkload pop;
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::RunOptions opts = store_opts("query.prrstore");
  const exp::ArmResult live = exp::run_arm(pop, arm, opts);

  const std::string path =
      obs::store_path_for_arm(opts.store_path, arm.name);
  StoreReader reader;
  std::string err;
  ASSERT_TRUE(StoreReader::open(path, &reader, &err)) << err;

  // Count of kTransmit records with a=1 is not directly a metric, but
  // total transmit records grouped by type must cover every record.
  obs::AggregateQuery q;
  q.group = obs::GroupKey::kType;
  obs::AggregateResult agg;
  ASSERT_TRUE(obs::run_aggregate(reader, q, &agg, &err)) << err;
  uint64_t total = 0;
  for (const auto& row : agg.rows) total += row.count;
  EXPECT_EQ(total, reader.total_records());

  // A cwnd time-series from kAck records of the first connection.
  obs::QueryField cwnd_field;
  ASSERT_TRUE(obs::parse_field(TraceType::kAck, "cwnd", &cwnd_field, &err));
  std::vector<obs::SeriesPoint> series;
  ASSERT_TRUE(obs::extract_series(reader, reader.connections()[0],
                                  TraceType::kAck, cwnd_field, &series,
                                  &err));
  ASSERT_FALSE(series.empty());
  int64_t prev = series[0].at_ns;
  for (const auto& pt : series) {
    EXPECT_GE(pt.at_ns, prev);  // stream order
    prev = pt.at_ns;
    EXPECT_GT(pt.value, 0u);  // cwnd is never zero
  }

  // Critical-path buckets must sum exactly to total recovery time.
  obs::CriticalPathReport sum;
  for (uint64_t conn : reader.connections()) {
    obs::CriticalPathReport rep;
    ASSERT_TRUE(obs::critical_path(reader, conn, &rep, &err)) << err;
    EXPECT_EQ(rep.total_ns,
              rep.waiting_for_ack_ns + rep.rto_wait_ns +
                  rep.app_limited_ns + rep.send_window_ns);
    sum.merge(rep);
  }
  EXPECT_EQ(sum.episodes, live.metrics.fast_recovery_events);
  std::remove(path.c_str());
}

TEST(StoreLive, BadCaptureSpecThrowsBeforeRunning) {
  workload::WebWorkload pop;
  exp::RunOptions opts = store_opts("never_written.prrstore");
  opts.capture = "sample=zero";
  EXPECT_THROW(exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace prr
