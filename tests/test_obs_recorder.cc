// FlightRecorder ring semantics: preallocated power-of-two capacity,
// oldest-first reads, wrap-around drop accounting, per-type counts,
// listener fan-out, and the PRR_TRACE macro's null-recorder gate.
#include <gtest/gtest.h>

#include <vector>

#include "obs/flight_recorder.h"

namespace prr::obs {
namespace {

TraceRecord rec_at(int64_t ns, TraceType type = TraceType::kAck) {
  return make_record(sim::Time::nanoseconds(ns), /*conn=*/1, type);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
  EXPECT_EQ(FlightRecorder(4096).capacity(), 4096u);
}

TEST(FlightRecorder, StoresOldestFirstBeforeWrap) {
  FlightRecorder r(8);
  for (int i = 0; i < 5; ++i) r.write(rec_at(i));
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.total_written(), 5u);
  EXPECT_EQ(r.dropped(), 0u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].at_ns, static_cast<int64_t>(i));
  }
}

TEST(FlightRecorder, WrapOverwritesOldestAndCountsDrops) {
  FlightRecorder r(8);
  for (int i = 0; i < 21; ++i) r.write(rec_at(i));
  EXPECT_EQ(r.capacity(), 8u);
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.total_written(), 21u);
  EXPECT_EQ(r.dropped(), 13u);
  // Survivors are the newest 8, oldest first: 13..20.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].at_ns, static_cast<int64_t>(13 + i));
  }
}

TEST(FlightRecorder, TailReturnsNewestRecordsOldestFirst) {
  FlightRecorder r(8);
  for (int i = 0; i < 12; ++i) r.write(rec_at(i));
  const std::vector<TraceRecord> tail = r.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].at_ns, 9);
  EXPECT_EQ(tail[1].at_ns, 10);
  EXPECT_EQ(tail[2].at_ns, 11);
  // Asking for more than held returns everything held.
  EXPECT_EQ(r.tail(100).size(), 8u);
}

TEST(FlightRecorder, PerTypeCounts) {
  FlightRecorder r(16);
  r.write(rec_at(0, TraceType::kAck));
  r.write(rec_at(1, TraceType::kAck));
  r.write(rec_at(2, TraceType::kTransmit));
  r.write(rec_at(3, TraceType::kRtoFired));
  EXPECT_EQ(r.count(TraceType::kAck), 2u);
  EXPECT_EQ(r.count(TraceType::kTransmit), 1u);
  EXPECT_EQ(r.count(TraceType::kRtoFired), 1u);
  EXPECT_EQ(r.count(TraceType::kUndo), 0u);
  // Counts survive wrap (they count writes, not survivors).
  for (int i = 0; i < 40; ++i) r.write(rec_at(i, TraceType::kAck));
  EXPECT_EQ(r.count(TraceType::kAck), 42u);
}

TEST(FlightRecorder, ListenersSeeEveryRecordInOrder) {
  FlightRecorder r(4);
  std::vector<int64_t> seen_a;
  std::vector<int64_t> seen_b;
  r.add_listener([&](const TraceRecord& rec) { seen_a.push_back(rec.at_ns); });
  r.add_listener([&](const TraceRecord& rec) { seen_b.push_back(rec.at_ns); });
  for (int i = 0; i < 10; ++i) r.write(rec_at(i));
  // Fan-out is not limited by ring capacity.
  ASSERT_EQ(seen_a.size(), 10u);
  EXPECT_EQ(seen_a, seen_b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(seen_a[i], i);
}

TEST(FlightRecorder, ClearResetsEverything) {
  FlightRecorder r(4);
  for (int i = 0; i < 9; ++i) r.write(rec_at(i));
  r.clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.total_written(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_EQ(r.count(TraceType::kAck), 0u);
  r.write(rec_at(42));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].at_ns, 42);
}

TEST(TraceMacro, NullRecorderIsANoOpAndSkipsArgumentEvaluation) {
  FlightRecorder* rec = nullptr;
  int evaluated = 0;
  auto arg = [&] {
    ++evaluated;
    return uint64_t{7};
  };
  PRR_TRACE(rec, sim::Time::zero(), 0, TraceType::kAck, 0, 0, arg());
  EXPECT_EQ(evaluated, 0);

  FlightRecorder ring(4);
  rec = &ring;
  PRR_TRACE(rec, sim::Time::zero(), 0, TraceType::kAck, 0, 0, arg());
  if (trace_compiled_in()) {
    EXPECT_EQ(evaluated, 1);
    EXPECT_EQ(ring.total_written(), 1u);
    EXPECT_EQ(ring[0].f[0], 7u);
  } else {
    EXPECT_EQ(evaluated, 0);
    EXPECT_EQ(ring.total_written(), 0u);
  }
}

TEST(TraceRecord, DescribeNamesEveryType) {
  for (int t = 0; t < static_cast<int>(TraceType::kCount); ++t) {
    const TraceType type = static_cast<TraceType>(t);
    EXPECT_STRNE(to_string(type), "?") << "unnamed type " << t;
    const std::string line = describe(rec_at(1'234'567, type));
    EXPECT_NE(line.find(to_string(type)), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace prr::obs
