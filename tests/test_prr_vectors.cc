// Table-driven per-ACK vectors for the PRR state machine, in the style of
// the worked examples in RFC 6937: a fixed loss scenario is replayed ACK
// by ACK and the exact sndcnt sequence is asserted for each reduction
// bound. These pin the arithmetic (CEIL rounding, banking, mode switch)
// against hand-computed expectations.
#include <gtest/gtest.h>

#include <vector>

#include "core/prr.h"

namespace prr::core {
namespace {

constexpr uint32_t kMss = 1000;

struct AckStep {
  uint64_t delivered;  // DeliveredData for this ACK (bytes)
  uint64_t pipe;       // pipe before sending (bytes)
  uint64_t expect_sndcnt;
  uint64_t send;       // what the sender actually transmits
};

void replay(PrrState& prr, const std::vector<AckStep>& steps) {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const AckStep& s = steps[i];
    const uint64_t sndcnt = prr.on_ack(s.delivered, s.pipe);
    EXPECT_EQ(sndcnt, s.expect_sndcnt) << "step " << i;
    prr.on_data_sent(s.send);
  }
}

// Scenario A (the paper's Fig 2 shape): RecoverFS = 20 segments,
// Reno ssthresh = 10. Light loss: pipe stays above ssthresh. The
// byte-exact allowance alternates 500/1000 when quantized sends keep
// prr_out at whole segments.
TEST(PrrVectors, RenoHalvingAlternation) {
  PrrState prr(ReductionBound::kSlowStart);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  replay(prr, {
                  // del,  pipe, sndcnt, sent
                  {1000, 15000, 500, 0},     // not a full segment yet
                  {1000, 15000, 1000, 1000}, // allowance reaches one MSS
                  {1000, 14000, 500, 0},
                  {1000, 14000, 1000, 1000},
                  {1000, 13000, 500, 0},
                  {1000, 13000, 1000, 1000},
              });
  EXPECT_EQ(prr.prr_delivered(), 6 * kMss);
  EXPECT_EQ(prr.prr_out(), 3 * kMss);
  EXPECT_TRUE(prr.in_proportional_mode());
}

// Scenario B: CUBIC 30% reduction — RecoverFS = 10, ssthresh = 7. Exact
// CEIL sequence: ceil(0.7*i) - out yields 1,1,0,1,1,0,1,1,0,1 over ten
// ACKs when the sender keeps up, i.e. 7 sends in 10 ACKs.
TEST(PrrVectors, CubicSevenOfTen) {
  PrrState prr(ReductionBound::kSlowStart);
  prr.enter_recovery(10 * kMss, 7 * kMss, kMss);
  uint64_t total = 0;
  for (int i = 1; i <= 10; ++i) {
    const uint64_t sndcnt = prr.on_ack(kMss, 9 * kMss);
    // Byte-exact: ceil(i*1000 * 7/10) = i*700 with no rounding, so the
    // allowance is exactly 700 bytes per 1000 delivered — 7 segments'
    // worth across ten ACKs once the sender quantizes.
    EXPECT_EQ(sndcnt, 700u) << "ack " << i;
    prr.on_data_sent(sndcnt);
    total += sndcnt;
  }
  EXPECT_EQ(total, 7 * kMss);
}

// Scenario C: mode switch. Proportional while pipe > ssthresh, then a
// burst of losses collapses pipe: the slow-start part takes over and the
// banked allowance is released bounded by ssthresh - pipe.
TEST(PrrVectors, ModeSwitchReleasesBankBounded) {
  PrrState prr(ReductionBound::kSlowStart);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  replay(prr, {
                  {1000, 15000, 500, 0},
                  {1000, 15000, 1000, 1000},
                  {1000, 14000, 500, 0},
              });
  EXPECT_TRUE(prr.in_proportional_mode());
  // pipe collapses to 7 segments (< ssthresh 10): SSRB limit is
  // MAX(prr_delivered - prr_out, DeliveredData) + MSS =
  // MAX(4000-1000, 1000) + 1000 = 4000, bounded by room = 3000.
  const uint64_t sndcnt = prr.on_ack(kMss, 7 * kMss);
  EXPECT_FALSE(prr.in_proportional_mode());
  EXPECT_EQ(sndcnt, 3 * kMss);
}

// Scenario D: CRB in the same collapse sends only what was delivered
// minus what was sent (strict conservation).
TEST(PrrVectors, CrbStrictConservationOnCollapse) {
  PrrState prr(ReductionBound::kConservative);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  replay(prr, {
                  {1000, 15000, 500, 0},
                  {1000, 15000, 1000, 1000},
                  {1000, 14000, 500, 0},
              });
  // prr_delivered - prr_out = 3000, room = 3000: CRB also sends 3000
  // here; the difference from SSRB appears when the bank is empty.
  EXPECT_EQ(prr.on_ack(kMss, 7 * kMss), 3 * kMss);
  prr.on_data_sent(3 * kMss);
  // Bank now empty: the next collapse ACK under CRB allows only the new
  // delivery (1000); SSRB would allow delivery + 1 MSS.
  EXPECT_EQ(prr.on_ack(kMss, 8 * kMss), 1 * kMss);
}

// Scenario E: UB fills the entire hole at once.
TEST(PrrVectors, UbFillsRoomImmediately) {
  PrrState prr(ReductionBound::kUnlimited);
  prr.enter_recovery(20 * kMss, 10 * kMss, kMss);
  EXPECT_EQ(prr.on_ack(kMss, 3 * kMss), 7 * kMss);
}

// Scenario F: stretch ACK (LRO) delivering 4 segments at once gives the
// same cumulative allowance as four separate ACKs — the DeliveredData
// invariance the paper's §4.3 "precision" property describes.
TEST(PrrVectors, StretchAckEquivalence) {
  PrrState a(ReductionBound::kSlowStart);
  a.enter_recovery(20 * kMss, 10 * kMss, kMss);
  uint64_t allow_individual = 0;
  for (int i = 0; i < 4; ++i) {
    // With nothing sent, each on_ack reports the full banked allowance;
    // the final value is what the sender could use.
    allow_individual = a.on_ack(kMss, 15 * kMss);
  }
  PrrState b(ReductionBound::kSlowStart);
  b.enter_recovery(20 * kMss, 10 * kMss, kMss);
  const uint64_t allow_stretch = b.on_ack(4 * kMss, 15 * kMss);
  EXPECT_EQ(a.prr_delivered(), b.prr_delivered());
  EXPECT_EQ(allow_stretch, allow_individual);
}

// Scenario G: ACK loss — the surviving ACK reports the full delta, so
// the allowance catches up exactly.
TEST(PrrVectors, AckLossCatchUp) {
  PrrState lossless(ReductionBound::kSlowStart);
  lossless.enter_recovery(20 * kMss, 10 * kMss, kMss);
  uint64_t allow_a = 0;
  for (int i = 0; i < 6; ++i) allow_a = lossless.on_ack(kMss, 15 * kMss);

  PrrState lossy(ReductionBound::kSlowStart);
  lossy.enter_recovery(20 * kMss, 10 * kMss, kMss);
  // ACKs 1-5 dropped; ACK 6 arrives showing 6 segments delivered. The
  // usable allowance is identical to the lossless ACK stream's.
  const uint64_t allow_b = lossy.on_ack(6 * kMss, 15 * kMss);
  EXPECT_EQ(allow_a, allow_b);
}

}  // namespace
}  // namespace prr::core
