// query_gate: CI reconciliation check for the trace store + prr_query
// analytics layer (DESIGN.md §14). The store is *derived* state — every
// connection's flight-recorder ring, persisted columnar — so everything
// mined from it must agree bit-exactly with the in-process ground truth:
//
//   1. the store file is byte-identical at threads 1/4/8 and with the
//      diagnostic ring (RunOptions::trace) on or off — capture must not
//      depend on scheduling or on other observability being enabled;
//   2. two half-range runs merged with merge_store_files() reproduce the
//      full run's file byte for byte (the fork-per-shard contract);
//   3. episodes_from_store() rebuilds an EpisodeTable whose JSON equals
//      the live table's, and whose stream counters equal both the
//      tcp::Metrics aggregate and the metrics-registry counters;
//   4. raw-record aggregates reconcile with registry counters: one
//      kEnterRecovery record per fast-recovery event, one kRtoFired per
//      timeout, one kTransmit per data segment sent;
//   5. a triggered policy ("sample=8,full=timeout") keeps exactly the
//      connections the policy predicts from per-connection metrics, and
//      each kept connection's records are identical to the capture=all
//      store's — sampling selects, never mutates;
//   6. critical-path buckets sum exactly to summed episode duration for
//      every stored connection.
//
// Runs under chaos (ChaosSpec::everything) so the records exercise RTO
// interruptions, undo and aborts. Exits non-zero on the first mismatch.
// With PRR_TRACING=OFF rings carry no instrumentation, so stores are
// structurally valid but empty; the gate prints a skip line and passes.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "exp/scenarios.h"
#include "obs/episodes.h"
#include "obs/flight_recorder.h"
#include "obs/query.h"
#include "obs/store/capture_policy.h"
#include "obs/store/store_reader.h"
#include "obs/store/store_writer.h"
#include "util/artifacts.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

int g_failures = 0;

#define GATE_CHECK(cond, ...)                         \
  do {                                                \
    if (!(cond)) {                                    \
      std::printf("FAIL: " __VA_ARGS__);              \
      std::printf("  [%s]\n", #cond);                 \
      ++g_failures;                                   \
    }                                                 \
  } while (0)

constexpr int kConnections = 2000;
constexpr uint64_t kSeed = 20110501;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

exp::RunOptions base_opts() {
  exp::RunOptions opts;
  opts.connections = kConnections;
  opts.seed = kSeed;
  opts.check_invariants = true;  // chaos runs quarantine, never crash
  opts.scenario = "query_gate/chaos";
  // Reconciliation is only exact when no ring wraps: a wrapped ring
  // stores a (flagged) suffix of the stream, while the registry and the
  // listener-fed live episode table see everything. Size the ring so no
  // chaos connection wraps; section 3 asserts zero truncated blocks.
  opts.trace_ring_records = 1 << 16;
  return opts;
}

// Runs the PRR arm writing a store; returns the store file path.
std::string run_with_store(const workload::Population& pop,
                           exp::RunOptions opts, const std::string& name,
                           exp::ArmResult* result_out = nullptr) {
  opts.store_path = util::artifact_path(name);
  const exp::ArmConfig arm = exp::ArmConfig::prr_arm();
  exp::ArmResult r = exp::run_arm(pop, arm, opts);
  if (result_out != nullptr) *result_out = std::move(r);
  return obs::store_path_for_arm(opts.store_path, arm.name);
}

uint64_t counter_value(const exp::ArmResult& r, const char* name) {
  const auto* c = r.registry.find_counter(name);
  return c == nullptr ? 0 : c->value();
}

uint64_t agg_count(const obs::StoreReader& reader, obs::TraceType type) {
  obs::AggregateQuery q;
  q.filter.set_only_type(type);
  obs::AggregateResult res;
  std::string err;
  if (!obs::run_aggregate(reader, q, &res, &err)) {
    std::printf("FAIL: aggregate over %s: %s\n", obs::to_string(type),
                err.c_str());
    ++g_failures;
    return 0;
  }
  return res.rows.empty() ? 0 : res.rows[0].count;
}

}  // namespace

int main() {
  workload::WebWorkload base;
  exp::ChaosSpec spec = exp::ChaosSpec::everything();
  exp::ChaosPopulation pop(base, spec.profile);

  // --- 1. byte-identical store: threads 1/4/8 x ring trace on/off -----
  exp::RunOptions ref_opts = base_opts();
  ref_opts.capture = "all";
  ref_opts.threads = 1;
  exp::ArmResult live;
  live.name = "PRR";
  const std::string ref_path =
      run_with_store(pop, ref_opts, "qgate_ref.prrstore", &live);
  const std::string ref_bytes = slurp(ref_path);
  GATE_CHECK(!ref_bytes.empty(), "reference store is empty/unreadable\n");

  for (const bool trace : {false, true}) {
    for (const int threads : {1, 4, 8}) {
      if (!trace && threads == 1) continue;  // that IS the reference
      exp::RunOptions opts = ref_opts;
      opts.threads = threads;
      opts.trace = trace;
      opts.collect_episodes = trace;
      char name[64];
      std::snprintf(name, sizeof(name), "qgate_t%d_tr%d.prrstore", threads,
                    trace ? 1 : 0);
      const std::string path = run_with_store(pop, opts, name);
      const std::string bytes = slurp(path);
      GATE_CHECK(bytes == ref_bytes,
                 "store differs at threads=%d trace=%d (%zu vs %zu B)\n",
                 threads, trace ? 1 : 0, bytes.size(), ref_bytes.size());
      std::remove(path.c_str());
      std::printf("ok: store byte-identical threads=%d trace=%d (%zu B)\n",
                  threads, trace ? 1 : 0, bytes.size());
    }
  }

  // --- 2. split runs + merge == full run ------------------------------
  {
    exp::RunOptions lo = ref_opts;
    lo.connections = kConnections / 2;
    const std::string lo_path =
        run_with_store(pop, lo, "qgate_lo.prrstore");
    exp::RunOptions hi = ref_opts;
    hi.first_connection = kConnections / 2;
    hi.connections = kConnections - kConnections / 2;
    const std::string hi_path =
        run_with_store(pop, hi, "qgate_hi.prrstore");
    const std::string merged_path =
        util::artifact_path("qgate_merged.prrstore");
    std::string err;
    GATE_CHECK(obs::merge_store_files({lo_path, hi_path}, merged_path,
                                      &err),
               "merge failed: %s\n", err.c_str());
    GATE_CHECK(slurp(merged_path) == ref_bytes,
               "merged halves differ from the full run's store\n");
    std::printf("ok: split [0,%d)+[%d,%d) merge == full file\n",
                kConnections / 2, kConnections / 2, kConnections);
    std::remove(lo_path.c_str());
    std::remove(hi_path.c_str());
    std::remove(merged_path.c_str());
  }

  obs::StoreReader reader;
  {
    std::string err;
    GATE_CHECK(obs::StoreReader::open(ref_path, &reader, &err),
               "reopen reference store: %s\n", err.c_str());
  }

  if (!obs::trace_compiled_in()) {
    std::remove(ref_path.c_str());
    if (g_failures > 0) {
      std::printf("query_gate: %d check(s) FAILED\n", g_failures);
      return 1;
    }
    std::printf("query_gate: tracing compiled out (PRR_TRACING=OFF); "
                "stores are empty by design -- structural checks passed, "
                "skipping reconciliation.\n");
    return 0;
  }

  // --- 3. episodes_from_store == live episode table -------------------
  {
    uint64_t truncated = 0;
    for (const auto& b : reader.blocks()) {
      if (b.flags & obs::kBlockTruncated) ++truncated;
    }
    GATE_CHECK(truncated == 0,
               "%llu ring-truncated block(s): raise trace_ring_records "
               "so reconciliation is exact\n",
               (unsigned long long)truncated);
    exp::RunOptions live_opts = ref_opts;
    live_opts.collect_episodes = true;
    live_opts.store_path.clear();
    const exp::ArmResult traced =
        exp::run_arm(pop, exp::ArmConfig::prr_arm(), live_opts);

    obs::EpisodeTable from_store;
    std::string err;
    GATE_CHECK(obs::episodes_from_store(reader, obs::QueryFilter{},
                                        &from_store, &err),
               "episodes_from_store: %s\n", err.c_str());
    GATE_CHECK(from_store.to_json() == traced.episodes.to_json(),
               "store-derived episode JSON != live episode JSON\n");

    const auto& s = from_store.stream();
    const auto& m = traced.metrics;
    GATE_CHECK(s.data_segments_sent == m.data_segments_sent,
               "data_segments_sent\n");
    GATE_CHECK(s.retransmits_total == m.retransmits_total,
               "retransmits_total\n");
    GATE_CHECK(s.fast_retransmits == m.fast_retransmits,
               "fast_retransmits\n");
    GATE_CHECK(s.dsacks_received == m.dsacks_received,
               "dsacks_received\n");
    GATE_CHECK(s.undo_events == m.undo_events, "undo_events\n");
    GATE_CHECK(s.timeouts_total == m.timeouts_total, "timeouts_total\n");
    GATE_CHECK(from_store.total() == m.fast_recovery_events,
               "episode total %zu vs fast_recovery_events %llu\n",
               from_store.total(),
               (unsigned long long)m.fast_recovery_events);
    std::printf("ok: store episodes == live (total %zu, json %zu B)\n",
                from_store.total(), from_store.to_json().size());
  }

  // --- 4. raw-record aggregates == registry counters -------------------
  {
    GATE_CHECK(agg_count(reader, obs::TraceType::kEnterRecovery) ==
                   counter_value(live, "tcp.fast_recovery_events"),
               "count(enter_recovery) != tcp.fast_recovery_events\n");
    GATE_CHECK(agg_count(reader, obs::TraceType::kRtoFired) ==
                   counter_value(live, "tcp.timeouts_total"),
               "count(rto_fired) != tcp.timeouts_total\n");
    GATE_CHECK(agg_count(reader, obs::TraceType::kTransmit) ==
                   counter_value(live, "tcp.data_segments_sent"),
               "count(transmit) != tcp.data_segments_sent\n");
    std::printf("ok: aggregates reconcile with registry "
                "(enter_recovery %llu, rto %llu, transmit %llu)\n",
                (unsigned long long)agg_count(
                    reader, obs::TraceType::kEnterRecovery),
                (unsigned long long)agg_count(reader,
                                              obs::TraceType::kRtoFired),
                (unsigned long long)agg_count(reader,
                                              obs::TraceType::kTransmit));
  }

  // --- 5. triggered policy selects, never mutates ----------------------
  {
    exp::RunOptions samp_opts = ref_opts;
    samp_opts.capture = "sample=8,full=timeout";
    const std::string samp_path =
        run_with_store(pop, samp_opts, "qgate_samp.prrstore");
    obs::StoreReader samp;
    std::string err;
    GATE_CHECK(obs::StoreReader::open(samp_path, &samp, &err),
               "open sampled store: %s\n", err.c_str());
    GATE_CHECK(samp.connections().size() < reader.connections().size(),
               "sampled store kept every connection\n");
    uint64_t checked = 0;
    for (uint64_t conn : samp.connections()) {
      std::vector<obs::TraceRecord> a, b;
      GATE_CHECK(samp.read_connection(conn, &a) &&
                     reader.read_connection(conn, &b),
                 "decode conn %llu\n", (unsigned long long)conn);
      GATE_CHECK(a.size() == b.size(),
                 "conn %llu: %zu sampled records vs %zu full\n",
                 (unsigned long long)conn, a.size(), b.size());
      for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (!(a[i].at_ns == b[i].at_ns && a[i].type == b[i].type &&
              a[i].a == b[i].a && a[i].b == b[i].b)) {
          GATE_CHECK(false, "conn %llu record %zu differs\n",
                     (unsigned long long)conn, i);
          break;
        }
      }
      ++checked;
    }
    // Every 1-in-8 sampled id must be present (triggers only ADD blocks).
    for (uint64_t id = 0; id < kConnections; ++id) {
      if (obs::capture_sampled(id, 8)) {
        std::vector<obs::TraceRecord> recs;
        GATE_CHECK(samp.read_connection(id, &recs) && !recs.empty(),
                   "sampled conn %llu missing from store\n",
                   (unsigned long long)id);
      }
    }
    std::printf("ok: sampled store (%zu conns, %llu cross-checked) is a "
                "pure subset of capture=all\n",
                samp.connections().size(), (unsigned long long)checked);
    std::remove(samp_path.c_str());
  }

  // --- 6. critical-path buckets partition episode time -----------------
  {
    uint64_t episodes = 0;
    for (uint64_t conn : reader.connections()) {
      obs::CriticalPathReport rep;
      std::string err;
      GATE_CHECK(obs::critical_path(reader, conn, &rep, &err),
                 "critical_path(%llu): %s\n", (unsigned long long)conn,
                 err.c_str());
      const int64_t sum = rep.waiting_for_ack_ns + rep.rto_wait_ns +
                          rep.app_limited_ns + rep.send_window_ns;
      GATE_CHECK(sum == rep.total_ns,
                 "conn %llu: buckets sum %lld != total %lld\n",
                 (unsigned long long)conn, (long long)sum,
                 (long long)rep.total_ns);
      episodes += rep.episodes;
    }
    GATE_CHECK(episodes == live.metrics.fast_recovery_events,
               "critpath episodes %llu != fast_recovery_events %llu\n",
               (unsigned long long)episodes,
               (unsigned long long)live.metrics.fast_recovery_events);
    std::printf("ok: critical-path buckets partition %llu episodes "
                "exactly\n",
                (unsigned long long)episodes);
  }

  std::remove(ref_path.c_str());
  if (g_failures > 0) {
    std::printf("query_gate: %d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("query_gate: all reconciliations passed (chaos sweep, "
              "threads 1/4/8, trace on/off, sampled + merged stores)\n");
  return 0;
}
