// Table 5: statistics of pipe - ssthresh at the start of recovery for the
// PRR arm on the Web population. Decides which PRR mode a recovery
// begins in.
//
// Paper: 32% of recovery events start with pipe < ssthresh (slow-start
// part), 13% equal, 45% above (proportional part); quantiles from -338
// (min) through +1 (median) to +144 segments (max).
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 5: pipe - ssthresh at the start of recovery (PRR arm)",
      "32% start below ssthresh (slow start part), 13% equal, 45% above "
      "(proportional part); median +1 segment");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 5;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  const auto& log = r.recovery_log;

  util::Table modes({"mode at entry", "paper", "measured"});
  modes.add_row({"pipe < ssthresh  [slow start part]", "32%",
                 util::Table::fmt_pct(log.fraction_start_below_ssthresh())});
  modes.add_row({"pipe == ssthresh", "13%",
                 util::Table::fmt_pct(log.fraction_start_equal_ssthresh())});
  modes.add_row({"pipe > ssthresh  [proportional part]", "45%",
                 util::Table::fmt_pct(log.fraction_start_above_ssthresh())});
  std::printf("recovery events: %zu\n%s\n", log.count(),
              modes.to_string().c_str());

  util::Samples s = log.pipe_minus_ssthresh_segs();
  util::Table q({"quantile", "paper [segs]", "measured [segs]"});
  const char* paper_vals[] = {"-338 (min)", "-10", "+1", "+11",
                              "+144 (max)"};
  const double qs[] = {0.0, 0.01, 0.50, 0.99, 1.0};
  for (int i = 0; i < 5; ++i) {
    q.add_row({i == 0   ? "min"
               : i == 4 ? "max"
                        : util::Table::fmt(qs[i] * 100, 0) + "%",
               paper_vals[i], util::Table::fmt(s.quantile(qs[i]), 0)});
  }
  std::printf("%s\n", q.to_string().c_str());
  return 0;
}
