// Table 5: statistics of pipe - ssthresh at the start of recovery for the
// PRR arm on the Web population. Decides which PRR mode a recovery
// begins in.
//
// Paper: 32% of recovery events start with pipe < ssthresh (slow-start
// part), 13% equal, 45% above (proportional part); quantiles from -338
// (min) through +1 (median) to +144 segments (max).
#include <cstdio>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 5: pipe - ssthresh at the start of recovery (PRR arm)",
      "32% start below ssthresh (slow start part), 13% equal, 45% above "
      "(proportional part); median +1 segment");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 5;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  opts.collect_episodes = true;
  exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  // Episode table primary, RecoveryLog fallback when tracing is compiled
  // out; the mirrored accessors make the numbers identical either way.
  const bool use_episodes = obs::trace_compiled_in();
  const auto& tab = r.episodes;
  const auto& log = r.recovery_log;

  const double below = use_episodes ? tab.fraction_start_below_ssthresh()
                                    : log.fraction_start_below_ssthresh();
  const double equal = use_episodes ? tab.fraction_start_equal_ssthresh()
                                    : log.fraction_start_equal_ssthresh();
  const double above = use_episodes ? tab.fraction_start_above_ssthresh()
                                    : log.fraction_start_above_ssthresh();
  util::Table modes({"mode at entry", "paper", "measured"});
  modes.add_row({"pipe < ssthresh  [slow start part]", "32%",
                 util::Table::fmt_pct(below)});
  modes.add_row({"pipe == ssthresh", "13%", util::Table::fmt_pct(equal)});
  modes.add_row({"pipe > ssthresh  [proportional part]", "45%",
                 util::Table::fmt_pct(above)});
  std::printf("recovery events: %zu\n%s\n",
              use_episodes ? tab.finished() : log.count(),
              modes.to_string().c_str());

  util::Samples s = use_episodes ? tab.pipe_minus_ssthresh_segs()
                                 : log.pipe_minus_ssthresh_segs();
  util::Table q({"quantile", "paper [segs]", "measured [segs]"});
  const char* paper_vals[] = {"-338 (min)", "-10", "+1", "+11",
                              "+144 (max)"};
  const double qs[] = {0.0, 0.01, 0.50, 0.99, 1.0};
  for (int i = 0; i < 5; ++i) {
    q.add_row({i == 0   ? "min"
               : i == 4 ? "max"
                        : util::Table::fmt(qs[i] * 100, 0) + "%",
               paper_vals[i], util::Table::fmt(s.quantile(qs[i]), 0)});
  }
  std::printf("%s\n", q.to_string().c_str());
  return 0;
}
