// Table 10: India YouTube bulk-video loss-recovery statistics, 3-way on
// the video population (2.3 MB average transfers, ~860 ms RTT, little
// surplus capacity over the encoding rate).
//
// Paper: network transmit time Linux 87.4 s / RFC 3517 83.3 s / PRR
// 84.8 s; 43-46% of transmit time in loss recovery; retransmission rate
// 5.0/6.6/5.6%; bytes sent in FR 7/12/10%; fast-retransmits lost
// 2.4/16.4/4.8%; slow-start after FR 56/1/0%.
#include <cstdio>

#include "bench_common.h"
#include "workload/video_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 10: YouTube-India bulk transfers (per-arm averages)",
      "RFC 3517 fastest but loses 16.4% of its fast retransmits (bursts); "
      "PRR ~3% faster than Linux with <5% lost fast retransmits; Linux "
      "slow starts after 56% of recoveries, PRR after 0%");

  workload::VideoWorkload pop;
  exp::RunOptions opts;
  opts.connections = 600;
  opts.seed = 10;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  opts.per_connection_limit = sim::Time::seconds(600);
  auto results = exp::run_arms(pop, bench::three_way_arms(), opts);

  util::Table t({"metric", "paper (L/R/P)", "Linux", "RFC 3517", "PRR"});
  auto row = [&](const std::string& name, const std::string& paper,
                 auto getter, int precision, bool pct) {
    std::vector<std::string> cells{name, paper};
    for (const auto& r : results) {
      const double v = getter(r);
      cells.push_back(pct ? util::Table::fmt_pct(v, 1)
                          : util::Table::fmt(v, precision));
    }
    t.add_row(cells);
  };

  row("Network transmit time [s/conn]", "87.4 / 83.3 / 84.8",
      [](const exp::ArmResult& r) {
        return r.total_network_transmit_time.seconds_d() /
               static_cast<double>(r.connections_run);
      },
      1, false);
  row("% time in loss recovery", "42.7 / 46.3 / 44.9",
      [](const exp::ArmResult& r) {
        return r.fraction_time_in_loss_recovery();
      },
      1, true);
  row("Retransmission rate", "5.0 / 6.6 / 5.6",
      [](const exp::ArmResult& r) { return r.retransmission_rate(); }, 1,
      true);
  row("% bytes sent in fast recovery", "7 / 12 / 10",
      [](const exp::ArmResult& r) {
        return r.fraction_bytes_in_fast_recovery();
      },
      1, true);
  row("% fast-retransmits lost", "2.4 / 16.4 / 4.8",
      [](const exp::ArmResult& r) {
        return r.fraction_fast_retransmits_lost();
      },
      1, true);
  row("Slow start after fast recovery", "56% / 1% / 0%",
      [](const exp::ArmResult& r) {
        return r.recovery_log.fraction_slow_start_after();
      },
      1, true);
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected shape: RFC 3517 delivers fastest but with by far the "
      "highest lost-fast-retransmit rate; PRR close behind without the "
      "bursts; only Linux slow starts after recovery.\n");
  return 0;
}
