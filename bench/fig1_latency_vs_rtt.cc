// Figure 1: (top) average TCP latency of 4-8 kB responses by 200 ms RTT
// bucket, split into responses with and without retransmissions, against
// the ideal (one RTT); (bottom) CDF of the number of round trips taken by
// responses with and without retransmissions.
//
// Paper shapes: responses with losses take ~7-10x the ideal; the latency
// spread for lossy responses is tens of RTTs while loss-free responses
// sit within a few RTTs of ideal.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/quantiles.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Figure 1: TCP latency of 4-8 kB responses by RTT bucket",
      "responses with retransmits last 7-10x the ideal; CDF spread for "
      "lossy responses ~10x wider (tens to ~200 RTTs)");

  workload::WebWorkloadParams params;
  // Spread RTTs wider so every bucket of the paper's plot is populated.
  params.mean_rtt_ms = 220;
  params.rtt_sigma = 1.0;
  workload::WebWorkload pop(params);
  exp::RunOptions opts;
  opts.connections = 20000;
  opts.seed = 101;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::linux_arm(), opts);

  struct Bucket {
    util::Samples with_retx, without_retx, ideal;
  };
  std::vector<Bucket> buckets(5);  // 0-200, ..., 800-1000 ms

  for (const auto& resp : r.latency.responses()) {
    if (!resp.completed) continue;
    if (resp.bytes < 4000 || resp.bytes > 8000) continue;
    int b = static_cast<int>(resp.path_rtt_ms / 200.0);
    if (b < 0) b = 0;
    if (b > 4) continue;
    (resp.had_retransmit ? buckets[b].with_retx
                         : buckets[b].without_retx)
        .add(resp.latency_ms());
    buckets[b].ideal.add(resp.path_rtt_ms);
  }

  util::Table t({"RTT bucket [ms]", "avg w/ retx [ms]", "avg w/o retx [ms]",
                 "ideal [ms]", "w/ retx : ideal", "n(w/)", "n(w/o)"});
  for (int b = 0; b < 5; ++b) {
    const auto& bk = buckets[b];
    const double ideal = bk.ideal.mean();
    t.add_row({std::to_string(b * 200) + "-" + std::to_string(b * 200 + 200),
               util::Table::fmt(bk.with_retx.mean(), 0),
               util::Table::fmt(bk.without_retx.mean(), 0),
               util::Table::fmt(ideal, 0),
               ideal > 0 ? util::Table::fmt(bk.with_retx.mean() / ideal, 1)
                         : "-",
               std::to_string(bk.with_retx.count()),
               std::to_string(bk.without_retx.count())});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Bottom plot: CDF of round trips taken, all response sizes.
  util::Samples rtts_with =
      r.latency.rtts_taken(stats::LatencyTracker::Filter::kWithRetransmit);
  util::Samples rtts_without =
      r.latency.rtts_taken(stats::LatencyTracker::Filter::kWithoutRetransmit);
  util::Table cdf({"CDF point", "# RTTs w/ retx", "# RTTs w/o retx"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    cdf.add_row({util::Table::fmt(q, 2),
                 util::Table::fmt(rtts_with.quantile(q), 1),
                 util::Table::fmt(rtts_without.quantile(q), 1)});
  }
  std::printf("%s", cdf.to_string().c_str());
  std::printf(
      "\nPaper: lossy responses spread out to ~200 RTTs at the tail; "
      "loss-free responses stay within a few RTTs of ideal.\n");
  return 0;
}
