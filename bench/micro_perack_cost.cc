// Microbenchmarks (google-benchmark): per-ACK cost of the PRR state
// machine, the recovery policies, and the SACK scoreboard — the code
// that runs on every ACK of every connection in a server, so constant
// factors matter. Also benchmarks a full simulated connection with the
// invariant checker detached vs attached: detached must cost nothing
// (the checker is attach-only), attached costs one indirect call plus
// the checks per ACK.
#include <benchmark/benchmark.h>

#include "core/prr.h"
#include "http/server_app.h"
#include "net/link.h"
#include "net/segment.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/invariants.h"
#include "tcp/recovery/prr.h"
#include "tcp/recovery/rate_halving.h"
#include "tcp/recovery/rfc3517.h"
#include "tcp/scoreboard.h"
#include "util/alloc_counter.h"

namespace {

constexpr uint32_t kMss = 1460;

// Reports heap allocations per iteration next to ns/op, via the
// operator new/delete counting hooks linked into this binary. The hot
// per-ACK paths must show 0 here (see tests/test_alloc_free.cc for the
// enforcing test).
class AllocsPerOp {
 public:
  explicit AllocsPerOp(benchmark::State& state)
      : state_(state), start_(prr::util::alloc_counts()) {}
  ~AllocsPerOp() {
    const prr::util::AllocCounts end = prr::util::alloc_counts();
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(end.allocations - start_.allocations),
        benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  prr::util::AllocCounts start_;
};

void BM_PrrOnAck(benchmark::State& state) {
  prr::core::PrrState s;
  s.enter_recovery(100 * kMss, 70 * kMss, kMss);
  uint64_t pipe = 90 * kMss;
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    const uint64_t sndcnt = s.on_ack(kMss, pipe);
    s.on_data_sent(sndcnt);
    benchmark::DoNotOptimize(sndcnt);
    pipe = pipe > kMss ? pipe - kMss : 90 * kMss;
    if (s.prr_delivered() > 95 * kMss) {
      s.enter_recovery(100 * kMss, 70 * kMss, kMss);
    }
  }
}
BENCHMARK(BM_PrrOnAck);

// Steady-state event churn: schedule + fire (the Link/Timer pattern)
// and a timer-style reschedule, on a warm queue pinned to the heap
// backend (BM_TimerWheel* below are the wheel counterparts). Both must
// report allocs_per_op == 0 — the slot map recycles storage.
void BM_EventSchedule(benchmark::State& state) {
  prr::sim::EventQueue q;
  q.set_backend(prr::sim::SchedulerBackend::kHeap);
  int64_t now_us = 0;
  uint64_t fired = 0;
  // Warm the slot and heap vectors with a standing population.
  std::vector<prr::sim::EventId> standing;
  for (int i = 0; i < 64; ++i) {
    standing.push_back(q.schedule(
        prr::sim::Time::microseconds(1'000'000'000 + i), [&fired] {
          ++fired;
        }));
  }
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    q.schedule(prr::sim::Time::microseconds(now_us + 10),
               [&fired] { ++fired; });
    ++now_us;
    while (!q.empty() &&
           q.next_time() <= prr::sim::Time::microseconds(now_us)) {
      q.run_next();
    }
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventSchedule);

void BM_EventReschedule(benchmark::State& state) {
  prr::sim::EventQueue q;
  q.set_backend(prr::sim::SchedulerBackend::kHeap);
  uint64_t fired = 0;
  prr::sim::EventId id =
      q.schedule(prr::sim::Time::microseconds(1), [&fired] { ++fired; });
  int64_t at = 1;
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    id = q.reschedule(id, prr::sim::Time::microseconds(++at));
    benchmark::DoNotOptimize(id);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventReschedule);

// Timing-wheel counterparts of the two queue benches above: the same
// schedule+fire churn and the same timer-style reschedule, explicitly on
// the wheel backend, with a standing far-future population so overflow
// levels (and the cascades that drain them) are exercised rather than
// just level 0. Reschedule is the wheel's headline O(1) case — the RTO
// re-armed on every ACK relinks one intrusive node instead of leaving a
// stale heap entry behind. Both must report allocs_per_op == 0.
void BM_TimerWheelSchedule(benchmark::State& state) {
  prr::sim::EventQueue q;
  q.set_backend(prr::sim::SchedulerBackend::kWheel);
  int64_t now_us = 0;
  uint64_t fired = 0;
  std::vector<prr::sim::EventId> standing;
  for (int i = 0; i < 64; ++i) {
    standing.push_back(q.schedule(
        prr::sim::Time::microseconds(1'000'000'000 + i), [&fired] {
          ++fired;
        }));
  }
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    q.schedule(prr::sim::Time::microseconds(now_us + 10),
               [&fired] { ++fired; });
    ++now_us;
    while (!q.empty() &&
           q.next_time() <= prr::sim::Time::microseconds(now_us)) {
      q.run_next();
    }
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TimerWheelSchedule);

void BM_TimerWheelReschedule(benchmark::State& state) {
  prr::sim::EventQueue q;
  q.set_backend(prr::sim::SchedulerBackend::kWheel);
  uint64_t fired = 0;
  // A standing timer population spread across wheel levels, so the
  // rescheduled timer's unlink/link happens in realistically occupied
  // slots (not a degenerate empty wheel).
  std::vector<prr::sim::EventId> standing;
  for (int i = 0; i < 64; ++i) {
    standing.push_back(q.schedule(
        prr::sim::Time::microseconds(int64_t{1} << (10 + i % 20)),
        [&fired] { ++fired; }));
  }
  prr::sim::EventId id =
      q.schedule(prr::sim::Time::microseconds(1), [&fired] { ++fired; });
  int64_t at = 1;
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    id = q.reschedule(id, prr::sim::Time::microseconds(++at));
    benchmark::DoNotOptimize(id);
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TimerWheelReschedule);

// ACK-train delivery through a Link: `train` back-to-back 40-byte ACKs
// enter a fast link whose propagation delay holds them all in flight at
// once, so they arrive as one contiguous train. Per-event mode (Arg 1 ==
// 0) pays one EventQueue round-trip per ACK; batch mode (Arg 1 == 1)
// pays one drain event per train and dispatches the rest inline
// (DESIGN.md §12). ns/op is per train, so the per-ACK dispatch saving
// scales with the train length. Must report allocs_per_op == 0.
void BM_AckTrainDeliver(benchmark::State& state) {
  const int train = static_cast<int>(state.range(0));
  const bool batch = state.range(1) != 0;
  prr::sim::Simulator sim;
  sim.set_batch_delivery(batch);
  uint64_t delivered = 0;
  prr::net::Link::Config cfg;
  cfg.rate = prr::util::DataRate::mbps(10'000);
  cfg.propagation_delay = prr::sim::Time::microseconds(50);
  cfg.queue_limit_packets = 256;
  prr::net::Link link(sim, cfg,
                      [&delivered](prr::net::Segment&&) { ++delivered; });
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    for (int i = 0; i < train; ++i) {
      prr::net::Segment ack;
      ack.is_ack = true;
      ack.ack = delivered * 1460;
      link.send(std::move(ack));
    }
    sim.run(sim.now() + prr::sim::Time::microseconds(200));
  }
  if (delivered !=
      static_cast<uint64_t>(train) * static_cast<uint64_t>(state.iterations())) {
    state.SkipWithError("train not fully delivered");
  }
  state.counters["acks_per_op"] = benchmark::Counter(
      static_cast<double>(train));
}
BENCHMARK(BM_AckTrainDeliver)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}});

template <typename Policy>
void BM_PolicyOnAck(benchmark::State& state) {
  Policy p;
  p.on_enter(100 * kMss, 50 * kMss, 100 * kMss, kMss);
  prr::tcp::RecoveryAckContext ctx;
  ctx.delivered_bytes = kMss;
  ctx.pipe_bytes = 80 * kMss;
  ctx.mss = kMss;
  uint64_t cwnd = 100 * kMss;
  int acks = 0;
  for (auto _ : state) {
    ctx.cwnd_bytes = cwnd;
    cwnd = p.on_ack(ctx);
    p.on_sent(kMss);
    benchmark::DoNotOptimize(cwnd);
    if (++acks % 128 == 0) {
      p.on_enter(100 * kMss, 50 * kMss, 100 * kMss, kMss);
      cwnd = 100 * kMss;
    }
  }
}
BENCHMARK(BM_PolicyOnAck<prr::tcp::PrrRecovery>);
BENCHMARK(BM_PolicyOnAck<prr::tcp::RateHalvingRecovery>);
BENCHMARK(BM_PolicyOnAck<prr::tcp::Rfc3517Recovery>);

void BM_ScoreboardSackProcessing(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    prr::tcp::Scoreboard sb(kMss);
    sb.reset(0);
    for (int i = 0; i < window; ++i) {
      sb.on_transmit(static_cast<uint64_t>(i) * kMss,
                     static_cast<uint64_t>(i + 1) * kMss,
                     prr::sim::Time::zero());
    }
    state.ResumeTiming();
    // One SACK per segment from the middle of the window outward.
    for (int i = window / 2; i < window; ++i) {
      prr::net::Segment ack;
      ack.is_ack = true;
      ack.ack = 0;
      ack.sacks.push_back({static_cast<uint64_t>(window / 2) * kMss,
                           static_cast<uint64_t>(i + 1) * kMss});
      benchmark::DoNotOptimize(
          sb.on_ack(ack, prr::sim::Time::zero(), true));
    }
    benchmark::DoNotOptimize(sb.pipe());
  }
}
BENCHMARK(BM_ScoreboardSackProcessing)->Arg(32)->Arg(128)->Arg(512);

void BM_ScoreboardPipe(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  prr::tcp::Scoreboard sb(kMss);
  sb.reset(0);
  for (int i = 0; i < window; ++i) {
    sb.on_transmit(static_cast<uint64_t>(i) * kMss,
                   static_cast<uint64_t>(i + 1) * kMss,
                   prr::sim::Time::zero());
  }
  sb.update_loss_marks(3, true, true);
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sb.pipe());
  }
}
BENCHMARK(BM_ScoreboardPipe)->Arg(32)->Arg(128)->Arg(512);

// The other per-ACK scoreboard queries (sacked/lost tallies): like
// pipe(), these must be O(1) — flat across window sizes.
void BM_ScoreboardCounters(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  prr::tcp::Scoreboard sb(kMss);
  sb.reset(0);
  for (int i = 0; i < window; ++i) {
    sb.on_transmit(static_cast<uint64_t>(i) * kMss,
                   static_cast<uint64_t>(i + 1) * kMss,
                   prr::sim::Time::zero());
  }
  // SACK the upper half so every tally is non-trivial.
  prr::net::Segment ack;
  ack.is_ack = true;
  ack.ack = 0;
  ack.sacks.push_back({static_cast<uint64_t>(window / 2) * kMss,
                       static_cast<uint64_t>(window) * kMss});
  sb.on_ack(ack, prr::sim::Time::zero(), true);
  sb.update_loss_marks(3, true, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sb.total_sacked_bytes());
    benchmark::DoNotOptimize(sb.sacked_segment_count());
    benchmark::DoNotOptimize(sb.lost_segment_count());
    benchmark::DoNotOptimize(sb.any_sacked());
  }
}
BENCHMARK(BM_ScoreboardCounters)->Arg(32)->Arg(128)->Arg(512);

// Full connection (100 kB over a clean 10 Mbps / 40 ms path), with the
// invariant checker off (Arg 0) vs attached (Arg 1). Arg 0 must match
// the pre-checker baseline: an unconstructed checker adds zero work.
void BM_ConnectionRun(benchmark::State& state) {
  const bool check = state.range(0) != 0;
  uint64_t acks = 0;
  for (auto _ : state) {
    prr::sim::Simulator sim;
    prr::tcp::ConnectionConfig cfg;
    cfg.path = prr::net::Path::Config::symmetric(
        prr::util::DataRate::mbps(10), prr::sim::Time::milliseconds(40),
        /*queue_packets=*/100);
    prr::tcp::Connection conn(sim, cfg, prr::sim::Rng(5));
    std::unique_ptr<prr::tcp::InvariantChecker> checker;
    if (check) {
      checker = std::make_unique<prr::tcp::InvariantChecker>(sim,
                                                             conn.sender());
    }
    std::vector<prr::http::ResponseSpec> responses(1);
    responses[0].bytes = 100'000;
    prr::http::ServerApp app(sim, conn, responses);
    app.start();
    sim.run(prr::sim::Time::seconds(30));
    if (checker) {
      checker->finalize();
      acks += checker->acks_checked();
      benchmark::DoNotOptimize(checker->ok());
    }
    benchmark::DoNotOptimize(conn.sender().all_acked());
  }
  if (check) state.counters["acks_checked_per_iter"] =
      static_cast<double>(acks) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ConnectionRun)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// Raw flight-recorder write: one 64-byte masked ring store plus the
// per-type counter — the ceiling on what any PRR_TRACE site can cost.
// Must report allocs_per_op == 0.
void BM_FlightRecorderWrite(benchmark::State& state) {
  prr::obs::FlightRecorder rec(4096);
  int64_t t = 0;
  AllocsPerOp allocs(state);
  for (auto _ : state) {
    rec.write(prr::obs::make_record(prr::sim::Time::nanoseconds(++t), 1,
                                    prr::obs::TraceType::kAck, 2, 0, 1000,
                                    14608, 10000, 7304, 1460, 20000));
  }
  benchmark::DoNotOptimize(rec.total_written());
}
BENCHMARK(BM_FlightRecorderWrite);

// The same 100 kB connection as BM_ConnectionRun/0, with the full
// observability stack attached (flight recorder on the sender and the
// fault injector path, wire tap, timer tracing). Compare against
// BM_ConnectionRun/0 for the enabled-tracing overhead; under a
// PRR_TRACING=OFF build records_per_iter reports ~0 and the two must
// match to the noise floor. BENCH_TRACE.json (bench_trace_overhead)
// records the sweep-level version of this comparison.
void BM_ConnectionRunTraced(benchmark::State& state) {
  uint64_t records = 0;
  // One ring for the whole run, cleared per connection — the same shape
  // the sweep harness uses, so this measures steady-state tracing cost,
  // not ring construction.
  prr::obs::FlightRecorder recorder(4096);
  for (auto _ : state) {
    recorder.clear();
    prr::sim::Simulator sim;
    prr::tcp::ConnectionConfig cfg;
    cfg.path = prr::net::Path::Config::symmetric(
        prr::util::DataRate::mbps(10), prr::sim::Time::milliseconds(40),
        /*queue_packets=*/100);
    prr::tcp::Connection conn(sim, cfg, prr::sim::Rng(5));
    prr::obs::Instrument instrument(sim, conn, recorder, /*conn_id=*/0);
    std::vector<prr::http::ResponseSpec> responses(1);
    responses[0].bytes = 100'000;
    prr::http::ServerApp app(sim, conn, responses);
    app.start();
    sim.run(prr::sim::Time::seconds(30));
    records += recorder.total_written();
    benchmark::DoNotOptimize(conn.sender().all_acked());
  }
  state.counters["records_per_iter"] =
      static_cast<double>(records) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ConnectionRunTraced)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
