// §4.3 property bench: robustness of DeliveredData. Sweeps ACK loss and
// stretch-ACK (LRO) factors and reports, per recovery algorithm, how
// precisely each converges to the congestion-control target window
// (|cwnd_after_recovery - ssthresh| in segments) and the recovery
// timeout rate.
//
// Paper: rate halving relies on counting ACKs, so ACK loss and stretch
// ACKs make it under-transmit and end recovery with too-small windows;
// PRR's DeliveredData-based accounting is invariant to how delivery
// notifications are packed into ACKs.
//
// Part 2 is the chaos sweep: every scenario in standard_chaos_suite()
// (blackouts, link flaps, RTT spikes, bandwidth shifts, ACK outages,
// receiver stalls, everything-at-once) runs across all three arms with
// the TCP invariant checker attached to every connection. The table
// reports timeouts, aborted-connection counts, invariant violations and
// quarantined connections — the latter two must be zero on a healthy
// build no matter how hostile the path.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "exp/scenarios.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

struct Impairment {
  const char* name;
  double ack_loss;
  uint32_t stretch;
};

double mean_exit_error_segs(const exp::ArmResult& r) {
  util::Samples s = r.recovery_log.cwnd_minus_ssthresh_exit_segs();
  double acc = 0;
  for (double v : s.values()) acc += std::abs(v);
  return s.count() == 0 ? 0 : acc / static_cast<double>(s.count());
}

}  // namespace

int main() {
  bench::print_header(
      "§4.3 robustness: DeliveredData vs ACK counting under ACK loss and "
      "stretch ACKs",
      "PRR converges to ssthresh regardless of ACK packing; rate halving "
      "(per-ACK accounting) degrades as ACKs are lost or coalesced");

  const Impairment sweeps[] = {
      {"clean ACK path", 0.0, 1},
      {"10% ACK loss", 0.10, 1},
      {"25% ACK loss", 0.25, 1},
      {"LRO stretch x2", 0.0, 2},
      {"LRO stretch x4", 0.0, 4},
      {"20% loss + stretch x2", 0.20, 2},
  };

  util::Table t({"impairment", "arm", "mean |cwnd_exit - ssthresh| [segs]",
                 "timeouts in recovery", "recovery events"});
  for (const auto& imp : sweeps) {
    workload::WebWorkloadParams p;
    p.ack_loss_prob = imp.ack_loss;
    p.stretch_client_fraction = imp.stretch > 1 ? 1.0 : 0.0;
    workload::WebWorkload pop(p);

    // Override the stretch factor through the population by abusing the
    // fraction: build a tiny adapter population instead.
    class StretchPop final : public workload::Population {
     public:
      StretchPop(workload::WebWorkload base, uint32_t k)
          : base_(std::move(base)), k_(k) {}
      workload::ConnectionSample sample(sim::Rng rng) const override {
        auto s = base_.sample(rng);
        s.ack_stretch = k_;
        // An aggressive offload engine: hold ACKs long enough that
        // coalescing actually happens at access-link ACK spacing.
        s.ack_stretch_flush = sim::Time::milliseconds(40);
        return s;
      }

     private:
      workload::WebWorkload base_;
      uint32_t k_;
    } spop(pop, imp.stretch);

    exp::RunOptions opts;
    opts.connections = 5000;
    opts.seed = 31;
    opts.threads = 0;  // parallel sweep: byte-identical to serial
    auto results = exp::run_arms(spop, bench::three_way_arms(), opts);
    for (const auto& r : results) {
      t.add_row({imp.name, r.name,
                 util::Table::fmt(mean_exit_error_segs(r), 2),
                 std::to_string(r.metrics.timeouts_in_recovery),
                 std::to_string(r.recovery_log.count())});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected shape: PRR's exit error stays near zero across all "
      "impairments; Linux's grows with ACK loss and stretch factor.\n");

  bench::print_header(
      "chaos sweep: time-varying path dynamics under invariant checking",
      "no recovery algorithm may violate a TCP invariant (or throw) under "
      "blackouts, flaps, RTT spikes, bandwidth shifts, ACK outages or "
      "receiver stalls — quarantined must read 0 everywhere");

  util::Table chaos({"scenario", "arm", "acks checked", "violations",
                     "quarantined", "timeouts", "aborted conns",
                     "recovery events"});
  uint64_t total_violations = 0;
  std::size_t total_quarantined = 0;
  for (const exp::ChaosSpec& spec : exp::standard_chaos_suite()) {
    workload::WebWorkload base;
    exp::ChaosPopulation pop(base, spec.profile);

    exp::RunOptions opts;
    opts.connections = 600;
    opts.seed = 97;
    opts.threads = 0;  // parallel sweep: byte-identical to serial
    opts.check_invariants = true;
    opts.scenario = spec.name;

    exp::Experiment experiment(pop, opts);
    auto results = experiment.run(bench::three_way_arms());
    for (const auto& r : results) {
      chaos.add_row({spec.name, r.name, std::to_string(r.acks_checked),
                     std::to_string(r.invariant_violations),
                     std::to_string(r.quarantined.size()),
                     std::to_string(r.metrics.timeouts_total),
                     std::to_string(r.metrics.connections_aborted),
                     std::to_string(r.recovery_log.count())});
      total_violations += r.invariant_violations;
      total_quarantined += r.quarantined.size();
      for (const auto& rec : r.quarantined) {
        std::printf("QUARANTINED: %s\n", rec.summary().c_str());
      }
    }
  }
  std::printf("%s\n", chaos.to_string().c_str());
  std::printf("chaos total: %llu violation(s), %zu quarantined "
              "connection(s)%s\n",
              (unsigned long long)total_violations, total_quarantined,
              total_violations == 0 && total_quarantined == 0 ? " -- PASS"
                                                              : " -- FAIL");
  return total_violations == 0 && total_quarantined == 0 ? 0 : 1;
}
