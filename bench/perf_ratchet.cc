// perf_ratchet: compares the serial conns/sec of the current
// BENCH_SWEEP.json against the history recorded in BENCH_HISTORY.jsonl
// and fails when throughput regressed by more than the tolerance.
//
// Perf numbers only compare within one machine, so the ratchet filters
// history to entries whose full host fingerprint (hostname, CPU model,
// hardware concurrency — bench/host_fingerprint.h) matches this run's,
// and measures against the BEST such entry (the ratchet only tightens:
// a noisy slow run in history never lowers the bar). Entries from other
// machines are refused LOUDLY — each mismatch is printed with the field
// that differed — instead of being silently skipped, so a CI runner
// change shows up as "refused N cross-host entries", not as a
// mysteriously vacuous pass. A machine with no usable history passes
// vacuously — the first recorded run becomes its bar.
//
// The ratchet also enforces the trace-store overhead budget: when
// BENCH_TRACE.json is present, its store_sweep_overhead_pct (the sweep
// tax of capture under the headline "sample=64,full=timeout" policy,
// measured separately from ring-write overhead) must stay at or below
// RATCHET_STORE_MAX_PCT. This is an absolute budget from DESIGN.md §14,
// not a relative ratchet — the acceptance bar is "<10% overhead", not
// "no worse than the best run".
//
// Environment:
//   BENCH_SWEEP_JSON      current sweep result (default "BENCH_SWEEP.json")
//   BENCH_TRACE_JSON      current trace/store result
//                         (default "BENCH_TRACE.json"; missing = skip)
//   BENCH_HISTORY_JSONL   history to ratchet against
//                         (default "BENCH_HISTORY.jsonl")
//   RATCHET_TOLERANCE     allowed fractional regression (default 0.10)
//   RATCHET_STORE_MAX_PCT store overhead budget in percent (default 10)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "host_fingerprint.h"

namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Finds `"key": <number>` (whitespace after the colon optional) within
// s[from..); returns -1 when absent.
double find_number(const std::string& s, const char* key,
                   std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return -1;
  return std::atof(s.c_str() + at + needle.size());
}

std::string find_string(const std::string& s, const char* key,
                        std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = s.find('"', start);
  if (end == std::string::npos) return {};
  return s.substr(start, end - start);
}

// Absolute budget on the trace store's sweep overhead (DESIGN.md §14):
// BENCH_TRACE.json's store_sweep_overhead_pct must not exceed
// RATCHET_STORE_MAX_PCT. Returns false only on a budget violation; a
// missing file or a pre-store BENCH_TRACE.json (no field) skips.
bool store_budget_ok() {
  const char* trace_env = std::getenv("BENCH_TRACE_JSON");
  const char* max_env = std::getenv("RATCHET_STORE_MAX_PCT");
  const std::string trace_path = trace_env ? trace_env : "BENCH_TRACE.json";
  const double max_pct = max_env ? std::atof(max_env) : 10.0;

  const std::string trace = slurp(trace_path);
  if (trace.empty()) {
    std::printf("perf_ratchet: no %s — store overhead budget skipped\n",
                trace_path.c_str());
    return true;
  }
  const std::size_t at = trace.find("\"store_sweep_overhead_pct\":");
  if (at == std::string::npos) {
    std::printf("perf_ratchet: %s predates the trace store — store "
                "overhead budget skipped\n",
                trace_path.c_str());
    return true;
  }
  // find_number returns -1 for "absent", but a measured overhead can
  // legitimately be slightly negative (timing noise) — read in place.
  const double pct =
      std::atof(trace.c_str() + at + sizeof("\"store_sweep_overhead_pct\":") - 1);
  const bool ok = pct <= max_pct;
  std::printf("perf_ratchet: store overhead %.2f%% vs %.0f%% budget — %s\n",
              pct, max_pct, ok ? "PASS" : "FAIL");
  if (!ok) {
    std::fprintf(stderr,
                 "perf_ratchet: trace-store capture costs %.2f%% of the "
                 "sweep (> %.0f%% budget, RATCHET_STORE_MAX_PCT)\n",
                 pct, max_pct);
  }
  return ok;
}

}  // namespace

int main() {
  const char* sweep_env = std::getenv("BENCH_SWEEP_JSON");
  const char* hist_env = std::getenv("BENCH_HISTORY_JSONL");
  const char* tol_env = std::getenv("RATCHET_TOLERANCE");
  const std::string sweep_path = sweep_env ? sweep_env : "BENCH_SWEEP.json";
  const std::string hist_path =
      hist_env ? hist_env : "BENCH_HISTORY.jsonl";
  const double tolerance = tol_env ? std::atof(tol_env) : 0.10;

  const std::string sweep = slurp(sweep_path);
  if (sweep.empty()) {
    std::fprintf(stderr, "perf_ratchet: cannot read %s\n",
                 sweep_path.c_str());
    return 1;
  }
  const double current = find_number(sweep, "serial_conns_per_sec");
  if (current <= 0) {
    std::fprintf(stderr,
                 "perf_ratchet: no serial_conns_per_sec in %s\n",
                 sweep_path.c_str());
    return 1;
  }

  const prr::bench::HostFingerprint fp = prr::bench::host_fingerprint();

  // The sweep under test must itself be from this machine: a
  // BENCH_SWEEP.json copied in from elsewhere (or committed from a
  // different CI runner) must not be ratcheted against local history.
  const std::string sweep_host = find_string(sweep, "host");
  if (!sweep_host.empty() && sweep_host != fp.host) {
    std::fprintf(stderr,
                 "perf_ratchet: REFUSING cross-host comparison: %s was "
                 "produced on host %s but this machine is %s — rerun "
                 "bench_sweep_scaling here\n",
                 sweep_path.c_str(), sweep_host.c_str(), fp.host.c_str());
    return 1;
  }

  const std::string history = slurp(hist_path);
  double best = 0;
  int considered = 0;
  int refused = 0;
  // One JSON object per line; scan line by line. The wrapper's
  // "machine" object precedes the embedded sweep document on every
  // line, so first-occurrence key scans read the fingerprint, not a
  // field of the sweep.
  std::size_t line_start = 0;
  while (line_start < history.size()) {
    std::size_t line_end = history.find('\n', line_start);
    if (line_end == std::string::npos) line_end = history.size();
    const std::string line =
        history.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) continue;
    const std::string past_host = find_string(line, "host");
    const std::string past_cpu = find_string(line, "cpu_model");
    const double past_hw = find_number(line, "hardware_concurrency");
    const char* mismatch = nullptr;
    if (past_host != fp.host) {
      mismatch = "host";
    } else if (!past_cpu.empty() && past_cpu != fp.cpu_model) {
      // Pre-fingerprint history lines carry no cpu_model; same-host
      // entries without one stay comparable rather than orphaned.
      mismatch = "cpu_model";
    } else if (past_hw > 0 &&
               past_hw != static_cast<double>(fp.hardware_concurrency)) {
      mismatch = "hardware_concurrency";
    }
    if (mismatch != nullptr) {
      ++refused;
      std::fprintf(stderr,
                   "perf_ratchet: REFUSING cross-host comparison: "
                   "history entry (host %s, cpu %s, hw %d) differs from "
                   "this machine (host %s, cpu %s, hw %u) in %s\n",
                   past_host.empty() ? "?" : past_host.c_str(),
                   past_cpu.empty() ? "?" : past_cpu.c_str(),
                   static_cast<int>(past_hw), fp.host.c_str(),
                   fp.cpu_model.c_str(), fp.hardware_concurrency,
                   mismatch);
      continue;
    }
    const double past = find_number(line, "serial_conns_per_sec");
    if (past <= 0) continue;
    ++considered;
    if (past > best) best = past;
  }

  if (considered == 0) {
    std::printf(
        "perf_ratchet: no comparable history for host %s in %s (%d "
        "cross-host entr%s refused) — current %.1f conns/sec becomes "
        "the bar (PASS)\n",
        fp.host.c_str(), hist_path.c_str(), refused,
        refused == 1 ? "y" : "ies", current);
    return store_budget_ok() ? 0 : 1;
  }
  if (refused > 0) {
    std::printf(
        "perf_ratchet: refused %d cross-host entr%s (see stderr); "
        "comparing against same-fingerprint runs only\n",
        refused, refused == 1 ? "y" : "ies");
  }

  const double floor = best * (1.0 - tolerance);
  bool ok = current >= floor;
  std::printf(
      "perf_ratchet: current %.1f conns/sec vs best %.1f over %d "
      "same-host run%s (floor %.1f at %.0f%% tolerance) — %s\n",
      current, best, considered, considered == 1 ? "" : "s", floor,
      tolerance * 100.0, ok ? "PASS" : "FAIL");
  if (!ok) {
    std::fprintf(stderr,
                 "perf_ratchet: serial throughput regressed %.1f%% "
                 "(> %.0f%% allowed)\n",
                 (1.0 - current / best) * 100.0, tolerance * 100.0);
  }
  if (!store_budget_ok()) ok = false;
  return ok ? 0 : 1;
}
