// JSON-validity gate for bench artifacts (DESIGN.md §13 satellite):
// every file named on the command line — or, with no arguments, every
// BENCH_*.json / BENCH_*.jsonl in the current directory — must parse as
// well-formed JSON (JSONL: every line parses) and end in a newline.
//
// This is the cheap end of the artifact-integrity ladder: a truncated
// BENCH_TRACE.json from an unflushed stream or a full disk looks
// exactly like a valid file to `ls`, then breaks the history pipeline
// one commit later inside append_history / perf_ratchet where the
// failure is hard to attribute. CI runs this right after bench-smoke.
//
// Exit: 0 = every artifact parses, 1 = at least one is torn/invalid,
// 2 = usage-level error (an explicitly named file is missing).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

using namespace prr;

namespace {

std::string slurp(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return {};
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  *ok = std::ferror(f) == 0;
  std::fclose(f);
  return out;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// One file's verdict; prints its own diagnosis.
bool check_file(const std::string& path) {
  bool read_ok = false;
  const std::string body = slurp(path, &read_ok);
  if (!read_ok) {
    std::printf("FAIL %-24s unreadable\n", path.c_str());
    return false;
  }
  if (body.empty()) {
    std::printf("FAIL %-24s empty (torn write?)\n", path.c_str());
    return false;
  }
  if (body.back() != '\n') {
    // Every writer in this repo terminates its artifact with \n; a
    // missing one is the signature of a truncated buffered stream.
    std::printf("FAIL %-24s missing trailing newline (truncated?)\n",
                path.c_str());
    return false;
  }
  if (ends_with(path, ".jsonl")) {
    std::size_t line_no = 0;
    std::size_t start = 0;
    while (start < body.size()) {
      std::size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      ++line_no;
      const std::string_view line(body.data() + start, end - start);
      if (!line.empty() && !obs::json_valid(line)) {
        std::printf("FAIL %-24s line %zu is not valid JSON\n",
                    path.c_str(), line_no);
        return false;
      }
      start = end + 1;
    }
    std::printf("ok   %-24s %zu line(s)\n", path.c_str(), line_no);
    return true;
  }
  if (!obs::json_valid(body)) {
    std::printf("FAIL %-24s not valid JSON\n", path.c_str());
    return false;
  }
  std::printf("ok   %-24s %zu B\n", path.c_str(), body.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      if (!std::filesystem::exists(argv[i])) {
        std::fprintf(stderr, "json_gate: %s does not exist\n", argv[i]);
        return 2;
      }
      files.emplace_back(argv[i]);
    }
  } else {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(".", ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          (ends_with(name, ".json") || ends_with(name, ".jsonl"))) {
        files.push_back(name);
      }
    }
    if (ec) {
      std::fprintf(stderr, "json_gate: cannot scan .: %s\n",
                   ec.message().c_str());
      return 2;
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::printf("json_gate: no BENCH_*.json artifacts here; "
                  "nothing to validate\n");
      return 0;
    }
  }

  int failures = 0;
  for (const std::string& f : files) {
    if (!check_file(f)) ++failures;
  }
  std::printf("json_gate: %zu file(s), %d failure(s)%s\n", files.size(),
              failures, failures == 0 ? " -- PASS" : " -- FAIL");
  return failures == 0 ? 0 : 1;
}
