// Table 6: cwnd - ssthresh just prior to exiting recovery for the PRR
// arm. The paper's convergence claim: in ~90% of recovery events PRR's
// window has converged to exactly ssthresh by the end of recovery; the
// rest were too lossy for slow start to rebuild pipe in time.
//
// Paper quantiles (segments): 5%: -8, 10%: -3, 25%..99%: 0.
#include <cstdio>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 6: cwnd - ssthresh just prior to exiting recovery (PRR)",
      "~90% of recoveries converge to exactly ssthresh; the tail is "
      "heavy-loss events where pipe could not be rebuilt");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 5;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  opts.collect_episodes = true;
  exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  // Episode table primary, RecoveryLog fallback (tracing compiled out);
  // the mirrored accessor makes the numbers identical either way.
  util::Samples s = obs::trace_compiled_in()
                        ? r.episodes.cwnd_minus_ssthresh_exit_segs()
                        : r.recovery_log.cwnd_minus_ssthresh_exit_segs();

  util::Table t({"quantile [%]", "paper [segs]", "measured [segs]"});
  const char* paper[] = {"-8", "-3", "0", "0", "0", "0", "0", "0"};
  const double qs[] = {5, 10, 25, 50, 75, 90, 95, 99};
  for (int i = 0; i < 8; ++i) {
    t.add_row({util::Table::fmt(qs[i], 0), paper[i],
               util::Table::fmt(s.quantile(qs[i] / 100.0), 0)});
  }
  std::printf("completed recovery events: %zu\n%s\n", s.count(),
              t.to_string().c_str());
  std::printf("fraction converged to >= ssthresh: %s (paper ~90%%)\n",
              util::Table::fmt_pct(1.0 - s.fraction_below(0.0)).c_str());
  return 0;
}
