// scheduler_equivalence_gate: CI gate for the DESIGN.md §12 claim that
// the event-dispatch machinery is invisible to results. It runs the
// standard three-arm Web sweep under every combination of
//
//   scheduler        heap | wheel      (RunOptions::scheduler)
//   delivery         per-event | batch (RunOptions::batch_delivery)
//   threads          1 | 4 | 8
//   tracing          off | on
//
// and fails unless all 24 combinations produce bit-identical aggregate
// digests. The unit-level differential tests (tests/test_timing_wheel.cc)
// check pop order on synthetic traces; this gate checks the same
// property end-to-end through real TCP dynamics, where a single swapped
// same-timestamp event would change retransmit counts or transmit-time
// sums and therefore the digest.
//
// Env overrides:
//   GATE_CONNECTIONS  population size per arm (default 300 — CI-sized;
//                     the property is combo-invariance, not scale)
//   GATE_SEED         population seed         (default 42)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

// FNV-1a over the flat integer aggregates every combo must reproduce —
// the same fields the sweep bench digests for its thread/process
// cross-check (no floating point anywhere).
uint64_t digest(const std::vector<exp::ArmResult>& results) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : results) {
    mix(r.metrics.data_segments_sent);
    mix(r.metrics.retransmits_total);
    mix(r.metrics.timeouts_total);
    mix(r.total_workload_bytes);
    mix(r.recovery_log.count());
    mix(r.latency.count());
    mix(static_cast<uint64_t>(r.total_network_transmit_time.ns()));
  }
  return h;
}

}  // namespace

int main() {
  const char* conns_env = std::getenv("GATE_CONNECTIONS");
  const char* seed_env = std::getenv("GATE_SEED");
  const int connections = conns_env ? std::atoi(conns_env) : 300;
  const uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 42;

  workload::WebWorkload pop;
  const std::vector<exp::ArmConfig> arms = bench::three_way_arms();

  struct Combo {
    sim::SchedulerBackend scheduler;
    bool batch;
    int threads;
    bool trace;
  };
  std::vector<Combo> combos;
  for (const sim::SchedulerBackend sched :
       {sim::SchedulerBackend::kHeap, sim::SchedulerBackend::kWheel}) {
    for (const bool batch : {false, true}) {
      for (const int threads : {1, 4, 8}) {
        for (const bool trace : {false, true}) {
          combos.push_back(Combo{sched, batch, threads, trace});
        }
      }
    }
  }

  std::printf(
      "scheduler_equivalence_gate: %d conns x %zu arms, seed %" PRIu64
      ", %zu combos\n",
      connections, arms.size(), seed, combos.size());

  uint64_t reference = 0;
  bool have_reference = false;
  bool ok = true;
  for (const Combo& c : combos) {
    exp::RunOptions opts;
    opts.connections = connections;
    opts.seed = seed;
    opts.threads = c.threads;
    opts.scheduler = c.scheduler;
    opts.batch_delivery = c.batch;
    opts.trace = c.trace;
    const uint64_t d = digest(exp::run_arms(pop, arms, opts));
    const char* sched_name =
        c.scheduler == sim::SchedulerBackend::kWheel ? "wheel" : "heap";
    std::printf("  %-5s %-9s threads=%d trace=%d  digest 0x%016" PRIx64
                "%s\n",
                sched_name, c.batch ? "batch" : "per-event", c.threads,
                c.trace ? 1 : 0, d,
                !have_reference || d == reference ? "" : "  MISMATCH");
    if (!have_reference) {
      reference = d;
      have_reference = true;
    } else if (d != reference) {
      ok = false;
    }
  }

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: aggregate digests differ across scheduler/"
                 "delivery/thread/tracing combos — dispatch machinery "
                 "leaked into results\n");
    return 1;
  }
  std::printf("PASS: all %zu combos bit-identical (0x%016" PRIx64 ")\n",
              combos.size(), reference);
  return 0;
}
