#include "bench_common.h"

#include <cstdio>

namespace prr::bench {

std::vector<exp::ArmConfig> three_way_arms() {
  return {exp::ArmConfig::linux_arm(), exp::ArmConfig::rfc3517_arm(),
          exp::ArmConfig::prr_arm()};
}

std::vector<std::string> quantile_row(const std::string& label,
                                      const util::Samples& s,
                                      const std::vector<double>& quantiles,
                                      int precision, bool with_mean) {
  std::vector<std::string> row{label};
  for (double q : quantiles) {
    row.push_back(util::Table::fmt(s.quantile(q / 100.0), precision));
  }
  if (with_mean) row.push_back(util::Table::fmt(s.mean(), precision));
  return row;
}

void print_header(const std::string& experiment,
                  const std::string& paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper reports: %s\n", paper_summary.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace prr::bench
