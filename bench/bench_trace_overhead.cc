// Tracing overhead at sweep scale: the same fixed web sweep run with the
// flight recorder detached and attached (RunOptions::trace), verifying
// the aggregates are byte-identical both ways and reporting the
// wall-clock delta. Emits machine-readable BENCH_TRACE.json so future
// PRs can track the enabled-tracing tax (acceptance: <= 10% per-ACK;
// a PRR_TRACING=OFF build must show ~0 records and ~0 overhead).
//
// Env overrides: TRACE_CONNECTIONS (default 2000), TRACE_REPEATS
// (default 3, best-of), BENCH_TRACE_JSON (output path, default
// "BENCH_TRACE.json").
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "http/server_app.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "tcp/connection.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

uint64_t fingerprint(const exp::ArmResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(r.metrics.data_segments_sent);
  mix(r.metrics.retransmits_total);
  mix(r.metrics.timeouts_total);
  mix(r.total_workload_bytes);
  mix(static_cast<uint64_t>(r.recovery_log.count()));
  mix(static_cast<uint64_t>(r.latency.responses().size()));
  mix(static_cast<uint64_t>(r.total_network_transmit_time.ns()));
  return h;
}

struct Measurement {
  double seconds = 0;
  uint64_t digest = 0;
  uint64_t records = 0;
  uint64_t acks = 0;
};

Measurement run_once(const workload::Population& pop,
                     const exp::RunOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  const exp::ArmResult r =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.digest = fingerprint(r);
  const obs::Counter* written =
      r.registry.find_counter("obs.trace.records_written");
  m.records = written != nullptr ? written->value() : 0;
  m.acks = r.metrics.data_segments_sent;  // ~1 ACK per data segment
  return m;
}

Measurement best_of(const workload::Population& pop,
                    const exp::RunOptions& opts, int repeats) {
  Measurement best = run_once(pop, opts);
  for (int i = 1; i < repeats; ++i) {
    const Measurement m = run_once(pop, opts);
    if (m.seconds < best.seconds) best = m;
  }
  return best;
}

// Single-connection micro measurement (the per-ACK acceptance basis):
// the same 100 kB transfer as micro_perack_cost's BM_ConnectionRun,
// repeated back to back with the recorder detached or attached to one
// hoisted ring. Returns seconds per connection.
double micro_seconds_per_conn(bool traced, int iters, uint64_t* records) {
  obs::FlightRecorder recorder(4096);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    recorder.clear();
    sim::Simulator sim;
    tcp::ConnectionConfig cfg;
    cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(10),
                                            sim::Time::milliseconds(40),
                                            /*queue_packets=*/100);
    tcp::Connection conn(sim, cfg, sim::Rng(5));
    std::optional<obs::Instrument> instrument;
    if (traced) instrument.emplace(sim, conn, recorder, /*conn_id=*/0);
    std::vector<http::ResponseSpec> responses(1);
    responses[0].bytes = 100'000;
    http::ServerApp app(sim, conn, responses);
    app.start();
    sim.run(sim::Time::seconds(30));
  }
  const auto t1 = std::chrono::steady_clock::now();
  *records = recorder.total_written();  // last iteration's ring
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  bench::print_header(
      "Trace overhead: flight recorder attached vs detached",
      "wall-clock tax of per-connection tracing over a fixed web sweep; "
      "aggregates must be byte-identical with tracing on or off");

  const char* conn_env = std::getenv("TRACE_CONNECTIONS");
  const char* rep_env = std::getenv("TRACE_REPEATS");
  const char* json_env = std::getenv("BENCH_TRACE_JSON");
  const int connections = conn_env ? std::atoi(conn_env) : 2000;
  const int repeats = rep_env ? std::atoi(rep_env) : 3;
  const std::string json_path = json_env ? json_env : "BENCH_TRACE.json";

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = connections;
  opts.seed = 20110501;
  opts.threads = 1;  // serial: overhead unobscured by scheduling

  std::printf("tracing compiled %s, %d connections, best of %d\n\n",
              obs::trace_compiled_in() ? "IN" : "OUT", connections, repeats);

  const Measurement off = best_of(pop, opts, repeats);
  opts.trace = true;
  const Measurement on = best_of(pop, opts, repeats);

  const bool identical = off.digest == on.digest;
  const double overhead_pct =
      off.seconds > 0 ? (on.seconds / off.seconds - 1.0) * 100.0 : 0;
  const double ns_per_record =
      on.records > 0 ? (on.seconds - off.seconds) * 1e9 /
                           static_cast<double>(on.records)
                     : 0;

  std::printf("trace off: %8.3fs\n", off.seconds);
  std::printf("trace on:  %8.3fs  (%+.2f%%)\n", on.seconds, overhead_pct);
  std::printf("records:   %llu (%.1f per connection, ~%.1f ns each)\n",
              static_cast<unsigned long long>(on.records),
              static_cast<double>(on.records) / connections, ns_per_record);
  std::printf("aggregates identical tracing on/off: %s\n",
              identical ? "yes" : "NO — TRACING PERTURBED THE SIMULATION");

  // Micro: one 100 kB connection, instrumented vs bare (best of repeats).
  const int micro_iters = 500;
  uint64_t micro_records = 0;
  double micro_off = 1e9;
  double micro_on = 1e9;
  for (int i = 0; i < repeats; ++i) {
    uint64_t ignored = 0;
    const double off_s = micro_seconds_per_conn(false, micro_iters, &ignored);
    const double on_s =
        micro_seconds_per_conn(true, micro_iters, &micro_records);
    if (off_s < micro_off) micro_off = off_s;
    if (on_s < micro_on) micro_on = on_s;
  }
  const double micro_pct = (micro_on / micro_off - 1.0) * 100.0;
  std::printf("\nmicro (100 kB connection, best of %d x %d):\n", repeats,
              micro_iters);
  std::printf("untraced: %7.2f us/conn\n", micro_off * 1e6);
  std::printf("traced:   %7.2f us/conn  (%+.2f%%, %llu records/conn)\n",
              micro_on * 1e6, micro_pct,
              (unsigned long long)micro_records);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"trace_overhead\",\n"
               "  \"trace_compiled_in\": %s,\n"
               "  \"connections\": %d,\n"
               "  \"repeats\": %d,\n"
               "  \"seconds_trace_off\": %.4f,\n"
               "  \"seconds_trace_on\": %.4f,\n"
               "  \"overhead_pct\": %.2f,\n"
               "  \"records_written\": %llu,\n"
               "  \"ns_per_record\": %.1f,\n"
               "  \"micro_us_per_conn_untraced\": %.2f,\n"
               "  \"micro_us_per_conn_traced\": %.2f,\n"
               "  \"micro_overhead_pct\": %.2f,\n"
               "  \"micro_records_per_conn\": %llu,\n"
               "  \"aggregates_identical\": %s\n"
               "}\n",
               obs::trace_compiled_in() ? "true" : "false", connections,
               repeats, off.seconds, on.seconds, overhead_pct,
               static_cast<unsigned long long>(on.records), ns_per_record,
               micro_off * 1e6, micro_on * 1e6, micro_pct,
               static_cast<unsigned long long>(micro_records),
               identical ? "true" : "false");
  // A torn artifact (ENOSPC, a buffered tail lost at exit) must fail
  // the bench, not surface later as unparseable BENCH_TRACE.json.
  const bool torn = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || torn) {
    std::fprintf(stderr, "short write to %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return identical ? 0 : 1;
}
