// Tracing overhead at sweep scale: the same fixed web sweep run with the
// flight recorder detached and attached (RunOptions::trace), verifying
// the aggregates are byte-identical both ways and reporting the
// wall-clock delta. Emits machine-readable BENCH_TRACE.json so future
// PRs can track the enabled-tracing tax (acceptance: <= 10% per-ACK;
// a PRR_TRACING=OFF build must show ~0 records and ~0 overhead).
//
// Two costs are reported SEPARATELY (they are different mechanisms and
// regress independently):
//   * ring-write overhead — the per-event cost of PRR_TRACE landing
//     records in the per-connection ring (micro_overhead_pct);
//   * store overhead — the additional cost of the trace store's capture
//     path under the headline policy "sample=64,full=timeout": policy
//     evaluation per teardown plus columnar encode + file append for
//     kept rings (store_sweep_overhead_pct, ratcheted by perf_ratchet's
//     RATCHET_STORE_MAX_PCT). Capture attaches rings to every
//     connection, so the capture run is compared against the trace-ON
//     sweep — the same ring-write work — not against the bare sweep,
//     which would double-count the first cost. The micro store figure
//     times the encoder alone on a captive ring, so it cannot conflate
//     ring-write or measurement cost.
//
// Env overrides: TRACE_CONNECTIONS (default 20000), TRACE_REPEATS
// (default 7, best-of, interleaved across configurations),
// BENCH_TRACE_JSON (output path, default "BENCH_TRACE.json").
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "http/server_app.h"
#include "obs/flight_recorder.h"
#include "obs/instrument.h"
#include "obs/store/store_writer.h"
#include "tcp/connection.h"
#include "util/artifacts.h"
#include "util/checked_write.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

uint64_t fingerprint(const exp::ArmResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(r.metrics.data_segments_sent);
  mix(r.metrics.retransmits_total);
  mix(r.metrics.timeouts_total);
  mix(r.total_workload_bytes);
  mix(static_cast<uint64_t>(r.recovery_log.count()));
  mix(static_cast<uint64_t>(r.latency.responses().size()));
  mix(static_cast<uint64_t>(r.total_network_transmit_time.ns()));
  return h;
}

struct Measurement {
  double seconds = 0;
  uint64_t digest = 0;
  uint64_t records = 0;
  uint64_t acks = 0;
};

Measurement run_once(const workload::Population& pop,
                     const exp::RunOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  const exp::ArmResult r =
      exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.digest = fingerprint(r);
  const obs::Counter* written =
      r.registry.find_counter("obs.trace.records_written");
  m.records = written != nullptr ? written->value() : 0;
  m.acks = r.metrics.data_segments_sent;  // ~1 ACK per data segment
  return m;
}

void keep_best(Measurement* best, const Measurement& m, bool first) {
  if (first || m.seconds < best->seconds) *best = m;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n == 0 ? 0 : (n % 2 != 0 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2);
}

// Single-connection micro measurement (the per-ACK acceptance basis):
// the same 100 kB transfer as micro_perack_cost's BM_ConnectionRun,
// repeated back to back with the recorder detached or attached to one
// hoisted ring. Returns seconds per connection.
double micro_seconds_per_conn(bool traced, int iters, uint64_t* records) {
  obs::FlightRecorder recorder(4096);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    recorder.clear();
    sim::Simulator sim;
    tcp::ConnectionConfig cfg;
    cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(10),
                                            sim::Time::milliseconds(40),
                                            /*queue_packets=*/100);
    tcp::Connection conn(sim, cfg, sim::Rng(5));
    std::optional<obs::Instrument> instrument;
    if (traced) instrument.emplace(sim, conn, recorder, /*conn_id=*/0);
    std::vector<http::ResponseSpec> responses(1);
    responses[0].bytes = 100'000;
    http::ServerApp app(sim, conn, responses);
    app.start();
    sim.run(sim::Time::seconds(30));
  }
  const auto t1 = std::chrono::steady_clock::now();
  *records = recorder.total_written();  // last iteration's ring
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  bench::print_header(
      "Trace overhead: flight recorder attached vs detached",
      "wall-clock tax of per-connection tracing over a fixed web sweep; "
      "aggregates must be byte-identical with tracing on or off");

  const char* conn_env = std::getenv("TRACE_CONNECTIONS");
  const char* rep_env = std::getenv("TRACE_REPEATS");
  const char* json_env = std::getenv("BENCH_TRACE_JSON");
  // 20k connections puts one leg near a third of a second — small
  // enough to keep the bench under ~10 s, large enough that the paired
  // ratios below resolve single-digit overhead through machine jitter
  // (at 2k a leg is ~30 ms and the store tax drowns in scheduler noise).
  const int connections = conn_env ? std::atoi(conn_env) : 20000;
  const int repeats = rep_env ? std::atoi(rep_env) : 7;
  const std::string json_path = json_env ? json_env : "BENCH_TRACE.json";

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = connections;
  opts.seed = 20110501;
  opts.threads = 1;  // serial: overhead unobscured by scheduling

  std::printf("tracing compiled %s, %d connections, best of %d\n\n",
              obs::trace_compiled_in() ? "IN" : "OUT", connections, repeats);

  // Store capture under the headline sweep policy. Capture necessarily
  // attaches the per-shard ring to every connection (the policy decides
  // at teardown, so the records must exist), so that run pays the
  // ring-write tax too — the store tax alone (policy eval + encode +
  // file append) is the delta vs the trace-ON run, which pays the same
  // ring-write cost and nothing else.
  exp::RunOptions on_opts = opts;
  on_opts.trace = true;
  exp::RunOptions store_opts = opts;
  store_opts.capture = "sample=64,full=timeout";
  store_opts.store_path = util::artifact_path("bench_trace.prrstore");

  // The three configurations are measured as PAIRED rounds — each round
  // runs all three back to back and contributes one on/off and one
  // store/on ratio — and the reported overheads are the median of the
  // per-round ratios. Machine drift (thermal, a background daemon)
  // moves the baseline by ±10% across seconds, so unpaired best-of
  // minima taken at different moments routinely produce nonsense like
  // "tracing made it faster". Within a round the drift is shared by the
  // legs and divides out; alternating the leg order each round cancels
  // the drift that a fixed order would always charge to the same leg;
  // the median discards rounds a one-off stall landed in.
  Measurement off, on, store;
  std::vector<double> ring_ratio, store_ratio;
  for (int r = 0; r < repeats; ++r) {
    Measurement o, t, s;
    if (r % 2 == 0) {
      o = run_once(pop, opts);
      t = run_once(pop, on_opts);
      s = run_once(pop, store_opts);
    } else {
      s = run_once(pop, store_opts);
      t = run_once(pop, on_opts);
      o = run_once(pop, opts);
    }
    keep_best(&off, o, r == 0);
    keep_best(&on, t, r == 0);
    keep_best(&store, s, r == 0);
    if (o.seconds > 0 && t.seconds > 0) {
      ring_ratio.push_back(t.seconds / o.seconds);
      store_ratio.push_back(s.seconds / t.seconds);
    }
  }
  const std::string store_file =
      obs::store_path_for_arm(store_opts.store_path, "PRR");
  uint64_t store_bytes = 0;
  {
    std::FILE* sf = std::fopen(store_file.c_str(), "rb");
    if (sf != nullptr) {
      std::fseek(sf, 0, SEEK_END);
      store_bytes = static_cast<uint64_t>(std::ftell(sf));
      std::fclose(sf);
    }
    std::remove(store_file.c_str());
  }

  const bool identical =
      off.digest == on.digest && off.digest == store.digest;
  const double overhead_pct = (median(ring_ratio) - 1.0) * 100.0;
  const double ns_per_record =
      on.records > 0 ? overhead_pct / 100.0 * off.seconds * 1e9 /
                           static_cast<double>(on.records)
                     : 0;

  // Store tax vs the trace-on run: both attach rings to every
  // connection, so the quotient isolates capture (policy + encode + IO).
  const double store_pct = (median(store_ratio) - 1.0) * 100.0;

  std::printf("trace off: %8.3fs\n", off.seconds);
  std::printf("trace on:  %8.3fs  (median %+.2f%%)\n", on.seconds,
              overhead_pct);
  std::printf("store on:  %8.3fs  (median %+.2f%% vs trace on, policy %s, "
              "%llu B kept)\n",
              store.seconds, store_pct, store_opts.capture.c_str(),
              (unsigned long long)store_bytes);
  std::printf("records:   %llu (%.1f per connection, ~%.1f ns each)\n",
              static_cast<unsigned long long>(on.records),
              static_cast<double>(on.records) / connections, ns_per_record);
  std::printf("aggregates identical trace/store on/off: %s\n",
              identical ? "yes" : "NO — TRACING PERTURBED THE SIMULATION");

  // Micro: one 100 kB connection, instrumented vs bare (best of repeats).
  const int micro_iters = 500;
  uint64_t micro_records = 0;
  double micro_off = 1e9;
  double micro_on = 1e9;
  for (int i = 0; i < repeats; ++i) {
    uint64_t ignored = 0;
    const double off_s = micro_seconds_per_conn(false, micro_iters, &ignored);
    const double on_s =
        micro_seconds_per_conn(true, micro_iters, &micro_records);
    if (off_s < micro_off) micro_off = off_s;
    if (on_s < micro_on) micro_on = on_s;
  }
  const double micro_pct = (micro_on / micro_off - 1.0) * 100.0;
  std::printf("\nmicro (100 kB connection, best of %d x %d):\n", repeats,
              micro_iters);
  std::printf("untraced: %7.2f us/conn\n", micro_off * 1e6);
  std::printf("traced:   %7.2f us/conn  (%+.2f%%, %llu records/conn)\n",
              micro_on * 1e6, micro_pct,
              (unsigned long long)micro_records);

  // Store encode alone: replay one traced connection into a captive
  // ring, then time ONLY the columnar encoder over it. No simulation,
  // ring writes, or IO in the timed region — this is the pure per-kept-
  // connection encode cost the capture path adds at teardown.
  double micro_store = 0;
  {
    obs::FlightRecorder ring(4096);
    sim::Simulator sim;
    tcp::ConnectionConfig cfg;
    cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(10),
                                            sim::Time::milliseconds(40),
                                            /*queue_packets=*/100);
    tcp::Connection conn(sim, cfg, sim::Rng(5));
    obs::Instrument instrument(sim, conn, ring, /*conn_id=*/0);
    std::vector<http::ResponseSpec> responses(1);
    responses[0].bytes = 100'000;
    http::ServerApp app(sim, conn, responses);
    app.start();
    sim.run(sim::Time::seconds(30));

    const int enc_iters = 2000;
    obs::StoreEncoder encoder;
    obs::StoreShard shard;
    double best = 1e9;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < enc_iters; ++i) {
        shard.clear();
        encoder.encode(ring, /*conn=*/0, obs::kBlockFull, &shard);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double s =
          std::chrono::duration<double>(t1 - t0).count() / enc_iters;
      if (s < best) best = s;
    }
    micro_store = best;
    std::printf("store enc: %7.2f us/conn  (encode of %zu-record ring, "
                "separate from ring-write cost above)\n",
                micro_store * 1e6, ring.size());
  }
  const double micro_store_pct =
      micro_off > 0 ? micro_store / micro_off * 100.0 : 0;

  char body[2048];
  std::snprintf(
      body, sizeof(body),
      "{\n"
      "  \"benchmark\": \"trace_overhead\",\n"
      "  \"trace_compiled_in\": %s,\n"
      "  \"connections\": %d,\n"
      "  \"repeats\": %d,\n"
      "  \"seconds_trace_off\": %.4f,\n"
      "  \"seconds_trace_on\": %.4f,\n"
      "  \"overhead_pct\": %.2f,\n"
      "  \"records_written\": %llu,\n"
      "  \"ns_per_record\": %.1f,\n"
      "  \"seconds_store_on\": %.4f,\n"
      "  \"store_sweep_overhead_pct\": %.2f,\n"
      "  \"store_capture_policy\": \"%s\",\n"
      "  \"store_bytes\": %llu,\n"
      "  \"micro_us_per_conn_untraced\": %.2f,\n"
      "  \"micro_us_per_conn_traced\": %.2f,\n"
      "  \"micro_overhead_pct\": %.2f,\n"
      "  \"micro_us_per_conn_store_encode\": %.2f,\n"
      "  \"micro_store_encode_pct\": %.2f,\n"
      "  \"micro_records_per_conn\": %llu,\n"
      "  \"aggregates_identical\": %s\n"
      "}\n",
      obs::trace_compiled_in() ? "true" : "false", connections, repeats,
      off.seconds, on.seconds, overhead_pct,
      static_cast<unsigned long long>(on.records), ns_per_record,
      store.seconds, store_pct, store_opts.capture.c_str(),
      (unsigned long long)store_bytes, micro_off * 1e6, micro_on * 1e6,
      micro_pct, micro_store * 1e6, micro_store_pct,
      static_cast<unsigned long long>(micro_records),
      identical ? "true" : "false");
  // checked_write_json: a torn artifact (ENOSPC, a buffered tail lost at
  // exit) or malformed body must fail the bench here, not surface later
  // as unparseable BENCH_TRACE.json in perf_ratchet.
  if (!util::checked_write_json(json_path, body)) {
    std::fprintf(stderr, "short write to %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return identical ? 0 : 1;
}
