// Table 2: breakdown of TCP retransmission types in the Web data center
// (DC1) and the video data center (DC2), as percentages of total
// retransmissions.
//
// Paper: DC1 24% fast / 43% timeout / 17% slow-start / 15% failed, with
// most timeouts from the Open state; DC2 54% fast / 17% timeout / 29%
// slow-start / 0% failed, with more timeouts in non-Open states.
#include <cstdio>

#include "bench_common.h"
#include "workload/video_workload.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

void print_dc(const char* name, const exp::ArmResult& r,
              const char* paper_col[8]) {
  const auto& m = r.metrics;
  const double total = static_cast<double>(m.retransmits_total);
  auto pct = [&](uint64_t v) {
    return total == 0 ? std::string("-")
                      : util::Table::fmt_pct(static_cast<double>(v) / total);
  };
  const double rto_total = static_cast<double>(m.timeouts_total);
  auto pct_rto = [&](uint64_t v) {
    return rto_total == 0
               ? std::string("-")
               : util::Table::fmt_pct(static_cast<double>(v) / total);
  };

  util::Table t({"retransmission type", "paper", "measured"});
  t.add_row({"Fast retransmits", paper_col[0], pct(m.fast_retransmits)});
  t.add_row({"Timeout retransmits", paper_col[1],
             pct(m.timeout_retransmits)});
  t.add_row({"  Timeout in Open", paper_col[2],
             pct_rto(m.timeouts_in_open)});
  t.add_row({"  Timeout in Disorder", paper_col[3],
             pct_rto(m.timeouts_in_disorder)});
  t.add_row({"  Timeout in Recovery", paper_col[4],
             pct_rto(m.timeouts_in_recovery)});
  t.add_row({"  Timeout exp. backoff", paper_col[5],
             pct_rto(m.timeouts_exp_backoff)});
  t.add_row({"Slow start retransmits", paper_col[6],
             pct(m.slow_start_retransmits)});
  t.add_row({"Failed retransmits", paper_col[7],
             pct(m.failed_retransmits)});
  std::printf("---- %s ----\n", name);
  std::printf("total retransmissions: %llu  (rate %s)\n",
              (unsigned long long)m.retransmits_total,
              util::Table::fmt_pct(r.retransmission_rate()).c_str());
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2: Breakdown of retransmission types, DC1 (Web) and DC2 "
      "(YouTube India)",
      "DC1: 24% fast, 43% timeout (mostly in Open), 17% slow start, 15% "
      "failed. DC2: 54% fast, 17% timeout, 29% slow start, 0% failed.");

  exp::RunOptions web_opts;
  web_opts.connections = 8000;
  web_opts.seed = 2;
  web_opts.threads = 0;  // parallel sweep: byte-identical to serial
  exp::ArmResult dc1 =
      exp::run_arm(workload::WebWorkload(), exp::ArmConfig::linux_arm(),
                   web_opts);
  const char* dc1_paper[8] = {"24%", "43%", "30%", "2%",
                              "1%",  "10%", "17%", "15%"};
  print_dc("DC1 (Web population)", dc1, dc1_paper);

  exp::RunOptions video_opts;
  video_opts.connections = 400;
  video_opts.seed = 3;
  video_opts.threads = 0;  // parallel sweep: byte-identical to serial
  video_opts.per_connection_limit = sim::Time::seconds(600);
  exp::ArmConfig video_arm = exp::ArmConfig::linux_arm();
  video_arm.max_rto_backoffs = 15;  // DC2 servers had a higher cap
  exp::ArmResult dc2 =
      exp::run_arm(workload::VideoWorkload(), video_arm, video_opts);
  const char* dc2_paper[8] = {"54%", "17%", "8%", "3%",
                              "2%",  "4%",  "29%", "0%"};
  print_dc("DC2 (video population)", dc2, dc2_paper);
  return 0;
}
