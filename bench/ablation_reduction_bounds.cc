// Ablation (§4 footnote 3, IETF draft): the three PRR reduction-bound
// variants. PRR-CRB is strictly packet-conserving (can be slow to rebuild
// pipe -> more timeouts), PRR-UB rebuilds pipe in one burst (RFC
// 3517-like aggressiveness -> more lost retransmits), and PRR-SSRB (the
// paper's "PRR") sits between them — "the best combination of features".
#include <cstdio>

#include "bench_common.h"
#include "exp/scenarios.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Ablation: PRR reduction bounds (SSRB vs CRB vs UB)",
      "SSRB chosen for shipping: CRB is too conservative under heavy "
      "loss, UB bursts like RFC 3517");

  // Part 1: deterministic catastrophic-loss scenario: segments 1-16 of
  // 20 dropped. The very first SACK reveals a 16-segment hole, pipe
  // collapses far below ssthresh, and the reduction bound alone decides
  // how fast the hole is refilled.
  std::printf("-- catastrophic loss (segments 1-16 of 20 dropped) --\n");
  util::Table fig({"variant", "retransmits", "timeouts",
                   "max per-ACK burst", "recovery ends [ms]"});
  for (auto [name, bound] :
       {std::pair{"PRR-SSRB", core::ReductionBound::kSlowStart},
        std::pair{"PRR-CRB", core::ReductionBound::kConservative},
        std::pair{"PRR-UB", core::ReductionBound::kUnlimited}}) {
    exp::FigureScenario s =
        exp::FigureScenario::fig3(tcp::RecoveryKind::kPrr);
    s.original_drops = {1, 2, 3, 4, 5, 6, 7, 8,
                        9, 10, 11, 12, 13, 14, 15, 16};
    s.prr_bound = bound;
    exp::FigureRun run = exp::run_figure_scenario(s);
    uint64_t max_burst = 0;
    sim::Time end;
    for (const auto& e : run.recovery_log.events()) {
      max_burst = std::max(max_burst, e.max_burst_segments);
      end = e.end;
    }
    fig.add_row({name, std::to_string(run.metrics.retransmits_total),
                 std::to_string(run.metrics.timeouts_total),
                 std::to_string(max_burst), std::to_string(end.ms())});
  }
  std::printf("%s\n", fig.to_string().c_str());

  // Part 2: Web population with heavier losses so the bounded mode runs
  // often.
  workload::WebWorkloadParams p;
  p.clean_path_fraction = 0.4;
  p.lossy_p_good_to_bad = 0.015;
  workload::WebWorkload pop(p);
  exp::RunOptions opts;
  opts.connections = 8000;
  opts.seed = 21;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  std::vector<exp::ArmConfig> arms;
  for (auto [name, bound] :
       {std::pair{"PRR-SSRB", core::ReductionBound::kSlowStart},
        std::pair{"PRR-CRB", core::ReductionBound::kConservative},
        std::pair{"PRR-UB", core::ReductionBound::kUnlimited}}) {
    exp::ArmConfig a = exp::ArmConfig::prr_arm();
    a.name = name;
    a.prr_bound = bound;
    arms.push_back(a);
  }
  auto results = exp::run_arms(pop, arms, opts);

  util::Table t({"variant", "timeouts in recovery", "lost fast retx rate",
                 "max burst q99 [segs]", "lossy-response latency q50 [ms]",
                 "mean [ms]"});
  for (const auto& r : results) {
    util::Samples bursts = r.recovery_log.burst_sizes();
    util::Samples lat = r.latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    t.add_row({r.name, std::to_string(r.metrics.timeouts_in_recovery),
               util::Table::fmt_pct(r.fraction_fast_retransmits_lost()),
               util::Table::fmt(bursts.quantile(0.99), 0),
               util::Table::fmt(lat.quantile(0.5), 0),
               util::Table::fmt(lat.mean(), 0)});
  }
  std::printf("-- Web population, heavy-loss mix --\n%s\n",
              t.to_string().c_str());
  std::printf(
      "Expected shape: CRB -> most recovery timeouts (slowest rebuild); "
      "UB -> largest bursts and most lost fast retransmits; SSRB "
      "balances both.\n");
  return 0;
}
