// Figure 4: PRR banks sending opportunities during an application stall.
// 20 segments are written with segment 1 lost; the application stalls and
// writes 10 more mid-recovery. The catch-up burst is bounded by
// prr_delivered - prr_out (+1 MSS), then sending continues ACK-paced.
#include <cstdio>

#include "bench_common.h"
#include "exp/scenarios.h"

using namespace prr;

int main() {
  bench::print_header(
      "Figure 4: PRR banks sending opportunities across an app stall",
      "on catch-up the sender may burst ratio*(prr_delivered - prr_out) "
      "segments (3 in the paper's example), then spreads the rest across "
      "incoming ACKs");

  exp::FigureRun run = exp::run_figure_scenario(
      exp::FigureScenario::fig4(tcp::RecoveryKind::kPrr));
  std::printf("%s\n", run.trace.render_ascii(64).c_str());
  const auto& e = run.recovery_log.events().at(0);
  std::printf(
      "recovery %lld..%lld ms  retransmits=%llu  catch-up burst=%llu "
      "segments (bounded, not the whole backlog)\n",
      (long long)e.start.ms(), (long long)e.end.ms(),
      (unsigned long long)e.retransmits,
      (unsigned long long)e.max_burst_segments);
  std::printf("all data ACKed at %lld ms, timeouts=%llu\n",
              (long long)run.all_acked_at.ms(),
              (unsigned long long)run.metrics.timeouts_total);
  return 0;
}
