// Figure 2: time-sequence comparison of PRR (top), Linux rate-halving
// (middle) and RFC 3517 (bottom) on the paper's testbed — 100 ms RTT,
// 1.2 Mbps, MSS 1000; the server writes 20 kB at t=0 and 10 kB at
// t=500 ms; the first four segments are dropped.
//
// Expected shapes (paper §4.1):
//   PRR      : one retransmission every other ACK; recovery completes
//              ~460 ms with cwnd = ssthresh = 10, so the second write is
//              delivered in one RTT.
//   Linux    : similar retransmit timing, but recovery ends with
//              cwnd = pipe + 1, so the second write slow starts (~4 RTTs).
//   RFC 3517 : first retransmit immediately, then a half-RTT silence
//              until pipe falls below cwnd.
#include <cstdio>

#include "bench_common.h"
#include "exp/scenarios.h"

using namespace prr;

namespace {

void run_and_print(const char* label, tcp::RecoveryKind kind) {
  exp::FigureRun run =
      exp::run_figure_scenario(exp::FigureScenario::fig2(kind));
  std::printf("---- %s ----\n", label);
  std::printf("%s\n", run.trace.render_ascii(64).c_str());
  const auto& e = run.recovery_log.events().empty()
                      ? stats::RecoveryEvent{}
                      : run.recovery_log.events().front();
  std::printf(
      "recovery: %lld..%lld ms  ssthresh=%.0f segs  cwnd after exit=%.0f "
      "segs  retransmits=%llu\n",
      (long long)e.start.ms(), (long long)e.end.ms(),
      (double)e.ssthresh / 1000.0, e.cwnd_after_exit_segs(),
      (unsigned long long)e.retransmits);
  std::printf("second write (10 kB at 500 ms) fully ACKed at %lld ms\n\n",
              (long long)run.all_acked_at.ms());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2: PRR vs Linux fast recovery vs RFC 3517 time-sequence",
      "PRR finishes recovery at ~460 ms with cwnd=ssthresh=10 and sends "
      "the next 10 segments in one RTT; Linux ends recovery at cwnd=pipe+1 "
      "and takes ~4 RTTs to slow start the next response; RFC 3517 shows "
      "a half-RTT silence after the first fast retransmit.");
  run_and_print("PRR", tcp::RecoveryKind::kPrr);
  run_and_print("Linux rate halving", tcp::RecoveryKind::kLinuxRateHalving);
  run_and_print("RFC 3517", tcp::RecoveryKind::kRfc3517);
  return 0;
}
