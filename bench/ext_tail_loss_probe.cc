// Extension experiment (§8 future work): tail loss probe on the Web
// population. The paper observes that timeouts — mostly in the Open
// state, where tail losses produce no dupacks — make up over 60% of
// short-flow retransmissions, and asks "if and how timeouts can be
// improved in practice, especially for short flows". TLP (the authors'
// follow-up, later RFC 8985) is that answer: compare PRR with and
// without TLP.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Extension: tail loss probe (TLP) on the Web population",
      "expected: probes convert a chunk of Open-state timeouts into "
      "fast-recovery repairs, cutting lossy-response latency for short "
      "flows; total retransmissions stay nearly flat");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 14;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  std::vector<exp::ArmConfig> arms;
  exp::ArmConfig base = exp::ArmConfig::prr_arm();
  base.name = "PRR";
  arms.push_back(base);
  exp::ArmConfig tlp = base;
  tlp.name = "PRR + TLP";
  tlp.tail_loss_probe = true;
  arms.push_back(tlp);

  auto results = exp::run_arms(pop, arms, opts);
  const auto& b = results[0].metrics;

  util::Table t({"metric", "PRR", "PRR + TLP", "delta"});
  auto row = [&](const char* name, uint64_t v0, uint64_t v1) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%",
                  v0 ? (static_cast<double>(v1) - static_cast<double>(v0)) /
                           static_cast<double>(v0) * 100
                     : 0.0);
    t.add_row({name, std::to_string(v0), std::to_string(v1), buf});
  };
  row("RTO timeouts (total)", b.timeouts_total,
      results[1].metrics.timeouts_total);
  row("  in Open", b.timeouts_in_open, results[1].metrics.timeouts_in_open);
  row("Fast recovery events", b.fast_recovery_events,
      results[1].metrics.fast_recovery_events);
  row("Total retransmissions", b.retransmits_total,
      results[1].metrics.retransmits_total);
  row("TLP probes sent", b.tlp_probes_sent,
      results[1].metrics.tlp_probes_sent);
  std::printf("%s\n", t.to_string().c_str());

  util::Table lat({"latency of lossy responses", "PRR [ms]",
                   "PRR + TLP [ms]", "delta"});
  util::Samples l0 = results[0].latency.latency_ms(
      stats::LatencyTracker::Filter::kWithRetransmit);
  util::Samples l1 = results[1].latency.latency_ms(
      stats::LatencyTracker::Filter::kWithRetransmit);
  for (double q : {50.0, 90.0, 99.0}) {
    const double a = l0.quantile(q / 100.0), c = l1.quantile(q / 100.0);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%", (c - a) / a * 100);
    lat.add_row({"q" + util::Table::fmt(q, 0), util::Table::fmt(a, 0),
                 util::Table::fmt(c, 0), buf});
  }
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.1f%%",
                  (l1.mean() - l0.mean()) / l0.mean() * 100);
    lat.add_row({"mean", util::Table::fmt(l0.mean(), 0),
                 util::Table::fmt(l1.mean(), 0), buf});
  }
  std::printf("%s\n", lat.to_string().c_str());
  return 0;
}
