// Wall-clock scaling of the parallel experiment harness: a fixed
// table1-style sweep (Web population, the paper's standard three arms)
// run at threads in {1, 2, 4, 8}, reported as connections/sec and
// speedup vs the serial run, plus a cross-check that every thread count
// produced identical aggregates. Emits machine-readable BENCH_SWEEP.json
// in the working directory so future PRs have a perf trajectory to
// compare against.
//
// Env overrides: SWEEP_CONNECTIONS (default 2000), SWEEP_THREADS
// (comma-separated list, default "1,2,4,8"), BENCH_SWEEP_JSON (output
// path, default "BENCH_SWEEP.json").
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

struct Point {
  int threads = 1;
  double seconds = 0;
  double conns_per_sec = 0;
  double speedup = 1.0;
};

std::vector<int> parse_thread_list(const char* spec) {
  std::vector<int> out;
  std::string cur;
  for (const char* p = spec;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

uint64_t fingerprint(const std::vector<exp::ArmResult>& results) {
  // Cheap order-sensitive digest of the aggregates that must be thread-
  // count invariant.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : results) {
    mix(r.metrics.data_segments_sent);
    mix(r.metrics.retransmits_total);
    mix(r.metrics.timeouts_total);
    mix(r.total_workload_bytes);
    mix(static_cast<uint64_t>(r.recovery_log.count()));
    mix(static_cast<uint64_t>(r.latency.responses().size()));
    mix(static_cast<uint64_t>(r.total_network_transmit_time.ns()));
  }
  return h;
}

}  // namespace

int main() {
  bench::print_header(
      "Sweep scaling: parallel experiment harness",
      "wall-clock of a fixed table1-style 3-arm sweep at several worker "
      "counts; aggregates are byte-identical at every thread count");

  const char* conn_env = std::getenv("SWEEP_CONNECTIONS");
  const char* threads_env = std::getenv("SWEEP_THREADS");
  const char* json_env = std::getenv("BENCH_SWEEP_JSON");
  const int connections = conn_env ? std::atoi(conn_env) : 2000;
  const std::vector<int> thread_counts =
      parse_thread_list(threads_env ? threads_env : "1,2,4,8");
  const std::string json_path = json_env ? json_env : "BENCH_SWEEP.json";

  workload::WebWorkload pop;
  const std::vector<exp::ArmConfig> arms = bench::three_way_arms();
  exp::RunOptions opts;
  opts.connections = connections;
  opts.seed = 20110501;

  // Parallel speedup numbers are only meaningful when the machine has
  // cores to scale onto; on a 1-core box every thread count serializes
  // and "speedup" is just scheduling noise. The serial conns/sec trend
  // is the figure future PRs should track in that case.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool speedup_meaningful = hw > 1;
  std::printf("hardware_concurrency=%u%s\n\n", hw,
              speedup_meaningful
                  ? ""
                  : "  (1 core: speedup columns are noise; track the "
                    "serial conns/sec trend instead)");

  std::vector<Point> points;
  uint64_t serial_digest = 0;
  double serial_seconds = 0;
  double serial_conns_per_sec = 0;
  bool digests_match = true;
  for (int threads : thread_counts) {
    opts.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<exp::ArmResult> results =
        exp::run_arms(pop, arms, opts);
    const auto t1 = std::chrono::steady_clock::now();

    Point p;
    p.threads = threads;
    p.seconds = std::chrono::duration<double>(t1 - t0).count();
    const double total_conns =
        static_cast<double>(connections) * static_cast<double>(arms.size());
    p.conns_per_sec = p.seconds > 0 ? total_conns / p.seconds : 0;

    const uint64_t digest = fingerprint(results);
    if (points.empty()) {
      serial_digest = digest;
      serial_seconds = p.seconds;
    } else if (digest != serial_digest) {
      digests_match = false;
      std::fprintf(stderr,
                   "FAIL: aggregates at threads=%d differ from serial\n",
                   threads);
    }
    if (threads == 1) serial_conns_per_sec = p.conns_per_sec;
    p.speedup = p.seconds > 0 ? serial_seconds / p.seconds : 0;
    points.push_back(p);
    if (speedup_meaningful) {
      std::printf("threads=%-2d  %8.2fs  %9.1f conns/sec  speedup %.2fx\n",
                  threads, p.seconds, p.conns_per_sec, p.speedup);
    } else {
      std::printf("threads=%-2d  %8.2fs  %9.1f conns/sec  speedup n/a\n",
                  threads, p.seconds, p.conns_per_sec);
    }
  }
  if (serial_conns_per_sec == 0 && !points.empty()) {
    serial_conns_per_sec = points.front().conns_per_sec;
  }
  std::printf("\nserial trend: %.1f conns/sec\n", serial_conns_per_sec);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"sweep_scaling\",\n"
               "  \"connections\": %d,\n"
               "  \"arms\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"speedup_meaningful\": %s,\n"
               "  \"serial_conns_per_sec\": %.1f,\n"
               "  \"aggregates_identical\": %s,\n"
               "  \"points\": [\n",
               connections, arms.size(), hw,
               speedup_meaningful ? "true" : "false",
               serial_conns_per_sec,
               digests_match ? "true" : "false");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    // On a 1-core machine speedup_vs_serial is emitted as null rather
    // than a number nobody should read as a scaling claim.
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.4f, "
                 "\"conns_per_sec\": %.1f, \"speedup_vs_serial\": ",
                 p.threads, p.seconds, p.conns_per_sec);
    if (speedup_meaningful) {
      std::fprintf(f, "%.3f}%s\n", p.speedup,
                   i + 1 < points.size() ? "," : "");
    } else {
      std::fprintf(f, "null}%s\n", i + 1 < points.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return digests_match ? 0 : 1;
}
