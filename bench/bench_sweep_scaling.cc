// Wall-clock scaling of the parallel experiment harness: a fixed
// table1-style sweep (Web population, the paper's standard three arms)
// run at threads in {1, 2, 4, 8}, reported as connections/sec and
// speedup vs the serial run, plus a cross-check that every thread count
// produced identical aggregates. Emits machine-readable BENCH_SWEEP.json
// in the working directory so future PRs have a perf trajectory to
// compare against.
//
// Memory is measured, not asserted: the JSON carries peak RSS and
// bytes-per-connection so the constant-memory claim of the streaming
// fold (DESIGN.md §11) shows up as a flat curve when SWEEP_CONNECTIONS
// grows.
//
// Fork-per-shard mode (SWEEP_PROCS=P): the same population is split into
// P contiguous connection-id ranges, each run to completion in a forked
// child that writes a digest-checked per-shard JSON; the parent merges
// the shards in ascending-id order and verifies the merged aggregates
// reproduce the single-process run bit for bit. Every connection's
// sample path derives from (seed, id) alone, so process boundaries — like
// thread boundaries — cannot change any aggregate.
//
// Env overrides:
//   SWEEP_CONNECTIONS   population size per arm        (default 2000)
//   SWEEP_THREADS       comma-separated thread counts  (default "1,2,4,8")
//   SWEEP_PROCS         fork-per-shard process count   (default 0 = off)
//   SWEEP_BOUNDED       1 = bounded O(1)-memory stats  (default 0)
//   SWEEP_POOL          0 = disable connection arenas  (default 1)
//   SWEEP_MEM_BUDGET_MB fail if peak RSS exceeds this  (default 0 = off)
//   SWEEP_KEEP_SHARDS   1 = keep per-shard JSON files  (default 0)
//   BENCH_SWEEP_JSON    output path                    (default "BENCH_SWEEP.json")
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "host_fingerprint.h"
#include "util/checked_write.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

struct Point {
  int threads = 1;
  double seconds = 0;
  double conns_per_sec = 0;
  double speedup = 1.0;
};

std::vector<int> parse_thread_list(const char* spec) {
  std::vector<int> out;
  std::string cur;
  for (const char* p = spec;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
      if (*p == '\0') break;
    } else {
      cur += *p;
    }
  }
  return out;
}

// The flat integer aggregates of one arm that every thread count, and
// every process split, must reproduce exactly. Plain sums of
// per-connection contributions, so merging shards in ascending-id order
// is associative and exact (no floating point anywhere).
struct ArmAgg {
  uint64_t data_segments_sent = 0;
  uint64_t retransmits_total = 0;
  uint64_t timeouts_total = 0;
  uint64_t workload_bytes = 0;
  uint64_t recovery_count = 0;
  uint64_t latency_count = 0;
  int64_t transmit_time_ns = 0;

  static ArmAgg from(const exp::ArmResult& r) {
    ArmAgg a;
    a.data_segments_sent = r.metrics.data_segments_sent;
    a.retransmits_total = r.metrics.retransmits_total;
    a.timeouts_total = r.metrics.timeouts_total;
    a.workload_bytes = r.total_workload_bytes;
    a.recovery_count = r.recovery_log.count();
    // count() == responses().size() in unbounded mode and stays exact in
    // bounded mode, so the digest is identical across stats modes.
    a.latency_count = r.latency.count();
    a.transmit_time_ns = r.total_network_transmit_time.ns();
    return a;
  }

  void add(const ArmAgg& o) {
    data_segments_sent += o.data_segments_sent;
    retransmits_total += o.retransmits_total;
    timeouts_total += o.timeouts_total;
    workload_bytes += o.workload_bytes;
    recovery_count += o.recovery_count;
    latency_count += o.latency_count;
    transmit_time_ns += o.transmit_time_ns;
  }
};

// Cheap order-sensitive digest of the aggregates that must be thread-
// count (and process-count) invariant.
uint64_t fingerprint(const std::vector<ArmAgg>& aggs) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& a : aggs) {
    mix(a.data_segments_sent);
    mix(a.retransmits_total);
    mix(a.timeouts_total);
    mix(a.workload_bytes);
    mix(a.recovery_count);
    mix(a.latency_count);
    mix(static_cast<uint64_t>(a.transmit_time_ns));
  }
  return h;
}

std::vector<ArmAgg> aggregate(const std::vector<exp::ArmResult>& results) {
  std::vector<ArmAgg> aggs;
  aggs.reserve(results.size());
  for (const auto& r : results) aggs.push_back(ArmAgg::from(r));
  return aggs;
}

// Peak resident set of this process, in bytes (Linux ru_maxrss is KiB).
uint64_t peak_rss_bytes() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024ull;
}

// --- fork-per-shard: per-shard JSON format -------------------------------
//
// {"shard": k, "first": lo, "connections": n, "arms": [
//    {"data_segments_sent": ..., ..., "transmit_time_ns": ...}, ...],
//  "self_digest": "0x..."}
//
// self_digest is fingerprint() over the arms array, written by the child
// and recomputed by the parent after parsing — a torn or truncated shard
// file cannot be silently merged.

void write_shard_json(const std::string& path, uint64_t shard,
                      uint64_t first, int connections,
                      const std::vector<ArmAgg>& aggs) {
  std::string body;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"shard\": %" PRIu64 ", \"first\": %" PRIu64
                ", \"connections\": %d, \"arms\": [\n",
                shard, first, connections);
  body += buf;
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const ArmAgg& a = aggs[i];
    std::snprintf(buf, sizeof(buf),
                  "  {\"data_segments_sent\": %" PRIu64
                  ", \"retransmits_total\": %" PRIu64
                  ", \"timeouts_total\": %" PRIu64
                  ", \"workload_bytes\": %" PRIu64
                  ", \"recovery_count\": %" PRIu64
                  ", \"latency_count\": %" PRIu64
                  ", \"transmit_time_ns\": %" PRId64 "}%s\n",
                  a.data_segments_sent, a.retransmits_total,
                  a.timeouts_total, a.workload_bytes, a.recovery_count,
                  a.latency_count, a.transmit_time_ns,
                  i + 1 < aggs.size() ? "," : "");
    body += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "], \"self_digest\": \"0x%016" PRIx64 "\"}\n",
                fingerprint(aggs));
  body += buf;
  // The parent's digest check catches torn content, but exit nonzero
  // here too so the failure is attributed to the writer.
  if (!util::checked_write_json(path, body)) _exit(3);
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Scans for `"key": <uint>` starting at *pos; advances *pos past the
// value. Returns false (leaving *pos alone) if the key is absent.
bool scan_u64(const std::string& s, std::size_t* pos, const char* key,
              uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle, *pos);
  if (at == std::string::npos) return false;
  const char* p = s.c_str() + at + needle.size();
  char* end = nullptr;
  *out = std::strtoull(p, &end, 10);
  if (end == p) return false;
  *pos = static_cast<std::size_t>(end - s.c_str());
  return true;
}

// Parses one shard file back into its arms; returns false on a missing
// field or a self-digest mismatch.
bool parse_shard_json(const std::string& path, std::size_t num_arms,
                      std::vector<ArmAgg>* out) {
  const std::string s = slurp(path);
  if (s.empty()) return false;
  std::size_t pos = 0;
  out->clear();
  for (std::size_t i = 0; i < num_arms; ++i) {
    ArmAgg a;
    uint64_t ns = 0;
    if (!scan_u64(s, &pos, "data_segments_sent", &a.data_segments_sent) ||
        !scan_u64(s, &pos, "retransmits_total", &a.retransmits_total) ||
        !scan_u64(s, &pos, "timeouts_total", &a.timeouts_total) ||
        !scan_u64(s, &pos, "workload_bytes", &a.workload_bytes) ||
        !scan_u64(s, &pos, "recovery_count", &a.recovery_count) ||
        !scan_u64(s, &pos, "latency_count", &a.latency_count) ||
        !scan_u64(s, &pos, "transmit_time_ns", &ns)) {
      return false;
    }
    a.transmit_time_ns = static_cast<int64_t>(ns);
    out->push_back(a);
  }
  const std::size_t at = s.find("\"self_digest\": \"0x");
  if (at == std::string::npos) return false;
  const uint64_t recorded =
      std::strtoull(s.c_str() + at + std::strlen("\"self_digest\": \"0x"),
                    nullptr, 16);
  return recorded == fingerprint(*out);
}

}  // namespace

int main() {
  bench::print_header(
      "Sweep scaling: parallel experiment harness",
      "wall-clock of a fixed table1-style 3-arm sweep at several worker "
      "counts; aggregates are byte-identical at every thread count");

  const char* conn_env = std::getenv("SWEEP_CONNECTIONS");
  const char* threads_env = std::getenv("SWEEP_THREADS");
  const char* procs_env = std::getenv("SWEEP_PROCS");
  const char* bounded_env = std::getenv("SWEEP_BOUNDED");
  const char* pool_env = std::getenv("SWEEP_POOL");
  const char* budget_env = std::getenv("SWEEP_MEM_BUDGET_MB");
  const char* keep_env = std::getenv("SWEEP_KEEP_SHARDS");
  const char* json_env = std::getenv("BENCH_SWEEP_JSON");
  // Scheduler toggle matrix (DESIGN.md §12): SWEEP_SCHEDULER=heap|wheel
  // and SWEEP_BATCH=0|1 pin the ordering backend and the ACK-train batch
  // delivery mode, so CI's equivalence gate and A/B perf runs can drive
  // every combination through one binary. Defaults match RunOptions.
  const char* sched_env = std::getenv("SWEEP_SCHEDULER");
  const char* batch_env = std::getenv("SWEEP_BATCH");
  const int connections = conn_env ? std::atoi(conn_env) : 2000;
  const std::vector<int> thread_counts =
      parse_thread_list(threads_env ? threads_env : "1,2,4,8");
  const int procs = procs_env ? std::atoi(procs_env) : 0;
  const bool bounded = bounded_env && std::atoi(bounded_env) != 0;
  const bool pool = pool_env ? std::atoi(pool_env) != 0 : true;
  const double budget_mb = budget_env ? std::atof(budget_env) : 0.0;
  const bool keep_shards = keep_env && std::atoi(keep_env) != 0;
  const std::string json_path = json_env ? json_env : "BENCH_SWEEP.json";

  workload::WebWorkload pop;
  const std::vector<exp::ArmConfig> arms = bench::three_way_arms();
  exp::RunOptions opts;
  opts.connections = connections;
  opts.seed = 20110501;
  opts.bounded_stats = bounded;
  opts.pool_connections = pool;
  if (sched_env != nullptr) {
    opts.scheduler = std::string_view(sched_env) == "heap"
                         ? sim::SchedulerBackend::kHeap
                         : sim::SchedulerBackend::kWheel;
  }
  if (batch_env != nullptr) opts.batch_delivery = std::atoi(batch_env) != 0;

  // Parallel speedup numbers are only meaningful when the machine has
  // cores to scale onto; on a 1-core box every thread count serializes
  // and "speedup" is just scheduling noise. The serial conns/sec trend
  // is the figure future PRs should track in that case.
  const bench::HostFingerprint fp = bench::host_fingerprint();
  const unsigned hw = fp.hardware_concurrency;
  const bool speedup_meaningful = hw > 1;
  std::printf("hardware_concurrency=%u%s%s%s\n\n", hw,
              speedup_meaningful
                  ? ""
                  : "  (1 core: speedup columns are noise; track the "
                    "serial conns/sec trend instead)",
              bounded ? "  [bounded stats]" : "",
              pool ? "" : "  [pooling off]");

  std::vector<Point> points;
  uint64_t serial_digest = 0;
  double serial_seconds = 0;
  double serial_conns_per_sec = 0;
  bool digests_match = true;
  for (int threads : thread_counts) {
    opts.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<exp::ArmResult> results =
        exp::run_arms(pop, arms, opts);
    const auto t1 = std::chrono::steady_clock::now();

    Point p;
    p.threads = threads;
    p.seconds = std::chrono::duration<double>(t1 - t0).count();
    const double total_conns =
        static_cast<double>(connections) * static_cast<double>(arms.size());
    p.conns_per_sec = p.seconds > 0 ? total_conns / p.seconds : 0;

    const uint64_t digest = fingerprint(aggregate(results));
    if (points.empty()) {
      serial_digest = digest;
      serial_seconds = p.seconds;
    } else if (digest != serial_digest) {
      digests_match = false;
      std::fprintf(stderr,
                   "FAIL: aggregates at threads=%d differ from serial\n",
                   threads);
    }
    if (threads == 1) serial_conns_per_sec = p.conns_per_sec;
    p.speedup = p.seconds > 0 ? serial_seconds / p.seconds : 0;
    points.push_back(p);
    if (speedup_meaningful) {
      std::printf("threads=%-2d  %8.2fs  %9.1f conns/sec  speedup %.2fx\n",
                  threads, p.seconds, p.conns_per_sec, p.speedup);
    } else {
      std::printf("threads=%-2d  %8.2fs  %9.1f conns/sec  speedup n/a\n",
                  threads, p.seconds, p.conns_per_sec);
    }
  }
  if (serial_conns_per_sec == 0 && !points.empty()) {
    serial_conns_per_sec = points.front().conns_per_sec;
  }
  std::printf("\nserial trend: %.1f conns/sec\n", serial_conns_per_sec);

  // --- fork-per-shard pass -----------------------------------------------
  // Children run disjoint id-ranges of the same population and write
  // digest-checked shard JSON; the parent merges in ascending-id order
  // and the merged aggregates must equal the in-process run bit for bit.
  bool fork_merge_identical = true;  // vacuously true when the mode is off
  double procs_seconds = 0;
  if (procs > 0) {
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t n = static_cast<uint64_t>(connections);
    const uint64_t nprocs =
        std::min<uint64_t>(static_cast<uint64_t>(procs), n);
    std::vector<pid_t> children;
    std::vector<std::string> shard_paths;
    for (uint64_t k = 0; k < nprocs; ++k) {
      const uint64_t lo = n * k / nprocs;
      const uint64_t hi = n * (k + 1) / nprocs;
      const std::string shard_path =
          json_path + ".shard" + std::to_string(k);
      shard_paths.push_back(shard_path);
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        // Child: its whole contribution is the shard file.
        exp::RunOptions shard_opts = opts;
        shard_opts.threads = 1;
        shard_opts.first_connection = lo;
        shard_opts.connections = static_cast<int>(hi - lo);
        const std::vector<exp::ArmResult> shard_results =
            exp::run_arms(pop, arms, shard_opts);
        write_shard_json(shard_path, k, lo, shard_opts.connections,
                         aggregate(shard_results));
        _exit(0);
      }
      children.push_back(pid);
    }
    for (pid_t pid : children) {
      int status = 0;
      if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "FAIL: shard child %d did not exit cleanly\n",
                     static_cast<int>(pid));
        fork_merge_identical = false;
      }
    }
    std::vector<ArmAgg> merged(arms.size());
    for (std::size_t k = 0; k < shard_paths.size(); ++k) {
      std::vector<ArmAgg> shard;
      if (!parse_shard_json(shard_paths[k], arms.size(), &shard)) {
        std::fprintf(stderr,
                     "FAIL: shard %zu failed its self-digest check\n", k);
        fork_merge_identical = false;
        continue;
      }
      for (std::size_t a = 0; a < arms.size(); ++a) merged[a].add(shard[a]);
    }
    if (fork_merge_identical && fingerprint(merged) != serial_digest) {
      std::fprintf(stderr,
                   "FAIL: fork-per-shard merge differs from in-process "
                   "aggregates\n");
      fork_merge_identical = false;
    }
    if (!keep_shards) {
      for (const auto& p : shard_paths) std::remove(p.c_str());
    }
    const auto t1 = std::chrono::steady_clock::now();
    procs_seconds = std::chrono::duration<double>(t1 - t0).count();
    std::printf("procs=%-3d %8.2fs  fork-per-shard merge %s\n",
                static_cast<int>(nprocs), procs_seconds,
                fork_merge_identical ? "identical" : "MISMATCH");
  }

  // --- memory ------------------------------------------------------------
  const uint64_t rss = peak_rss_bytes();
  const double rss_mb = static_cast<double>(rss) / (1024.0 * 1024.0);
  const double total_conns =
      static_cast<double>(connections) * static_cast<double>(arms.size());
  const double bytes_per_conn =
      total_conns > 0 ? static_cast<double>(rss) / total_conns : 0;
  std::printf("peak RSS: %.1f MB  (%.1f B/connection over %d x %zu)\n",
              rss_mb, bytes_per_conn, connections, arms.size());
  bool within_budget = true;
  if (budget_mb > 0 && rss_mb > budget_mb) {
    within_budget = false;
    std::fprintf(stderr,
                 "FAIL: peak RSS %.1f MB exceeds SWEEP_MEM_BUDGET_MB "
                 "%.1f\n",
                 rss_mb, budget_mb);
  }

  // speedup_nulled_reason states, in the artifact itself, why every
  // speedup_vs_serial below is null instead of leaving readers to guess
  // (the historical JSON showed hardware_concurrency: 1 with bare
  // nulls). The machine object is the fingerprint perf_ratchet keys
  // comparisons on.
  std::string body;
  char line[1024];
  std::snprintf(line, sizeof(line),
               "{\n"
               "  \"benchmark\": \"sweep_scaling\",\n"
               "  \"connections\": %d,\n"
               "  \"arms\": %zu,\n"
               "  \"machine\": %s,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"speedup_meaningful\": %s,\n"
               "  \"speedup_nulled_reason\": %s,\n"
               "  \"scheduler\": \"%s\",\n"
               "  \"batch_delivery\": %s,\n"
               "  \"bounded_stats\": %s,\n"
               "  \"pool_connections\": %s,\n"
               "  \"serial_conns_per_sec\": %.1f,\n"
               "  \"aggregates_identical\": %s,\n"
               "  \"peak_rss_mb\": %.1f,\n"
               "  \"bytes_per_connection\": %.1f,\n"
               "  \"fork_procs\": %d,\n"
               "  \"fork_merge_identical\": %s,\n"
               "  \"points\": [\n",
               connections, arms.size(),
               bench::host_fingerprint_json(fp).c_str(), hw,
               speedup_meaningful ? "true" : "false",
               speedup_meaningful
                   ? "null"
                   : "\"hardware_concurrency == 1: every thread count "
                     "serializes onto one core, so speedup_vs_serial "
                     "would be scheduling noise, not scaling\"",
               opts.scheduler == sim::SchedulerBackend::kWheel ? "wheel"
                                                               : "heap",
               opts.batch_delivery ? "true" : "false",
               bounded ? "true" : "false", pool ? "true" : "false",
               serial_conns_per_sec, digests_match ? "true" : "false",
               rss_mb, bytes_per_conn, procs,
               fork_merge_identical ? "true" : "false");
  body += line;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    // On a 1-core machine speedup_vs_serial is emitted as null rather
    // than a number nobody should read as a scaling claim.
    std::snprintf(line, sizeof(line),
                  "    {\"threads\": %d, \"seconds\": %.4f, "
                  "\"conns_per_sec\": %.1f, \"speedup_vs_serial\": ",
                  p.threads, p.seconds, p.conns_per_sec);
    body += line;
    if (speedup_meaningful) {
      std::snprintf(line, sizeof(line), "%.3f}%s\n", p.speedup,
                    i + 1 < points.size() ? "," : "");
    } else {
      std::snprintf(line, sizeof(line), "null}%s\n",
                    i + 1 < points.size() ? "," : "");
    }
    body += line;
  }
  body += "  ]\n}\n";
  if (!util::checked_write_json(json_path, body)) {
    std::fprintf(stderr, "short write to %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return (digests_match && fork_merge_identical && within_budget) ? 0 : 1;
}
