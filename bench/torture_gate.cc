// torture_gate: the adversarial torture campaign as a CI gate. Runs a
// seeded randomized campaign (pathology grammar x 3 recovery arms x
// progress/conservation/differential oracles) over the DC1-style web
// population, minimizes every failure with the shrinker, and exits
// non-zero if any failure was found — each one shipped as a
// self-contained .repro file ready to check into tests/corpus/.
//
// Deterministic: the same configuration produces a byte-identical
// summary JSON at any thread count (the wall-clock budget, when set, is
// the only nondeterministic input and marks the summary truncated).
//
// Configuration (environment):
//   TORTURE_SEEDS=200        campaign seeds (each: conns x 3 arms)
//   TORTURE_BASE_SEED=1      seed of campaign index 0
//   TORTURE_CONNS=6          connections per seed
//   TORTURE_THREADS=1        worker threads per arm (0 = hardware)
//   TORTURE_LIMIT_S=300      per-connection simulated-time cap
//   TORTURE_WATCHDOG=4       no-progress RTO firings before the oracle
//   TORTURE_SHRINK=1         minimize failures (0 = report unshrunk)
//   TORTURE_TIME_BUDGET_S=0  wall-clock budget, 0 = unbounded
//   TORTURE_OUT_DIR=         when set: write summary.json, one
//                            <name>.repro per failure, and the original
//                            quarantine trace as <name>.trace.json
//   TORTURE_VERBOSE=0        1 = per-seed / per-shrink progress lines
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "torture/campaign.h"
#include "util/checked_write.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

double env_f(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtod(v, nullptr) : fallback;
}

}  // namespace

int main() {
  torture::CampaignConfig cfg;
  cfg.seeds = static_cast<int>(env_u64("TORTURE_SEEDS", 200));
  cfg.base_seed = env_u64("TORTURE_BASE_SEED", 1);
  cfg.connections_per_seed = static_cast<int>(env_u64("TORTURE_CONNS", 6));
  cfg.threads = static_cast<int>(env_u64("TORTURE_THREADS", 1));
  cfg.per_connection_limit = sim::Time::seconds(env_f("TORTURE_LIMIT_S", 300));
  cfg.watchdog_rto_backoffs = static_cast<int>(env_u64("TORTURE_WATCHDOG", 4));
  cfg.shrink_failures = env_u64("TORTURE_SHRINK", 1) != 0;
  cfg.time_budget_seconds = env_f("TORTURE_TIME_BUDGET_S", 0);
  if (env_u64("TORTURE_VERBOSE", 0) != 0) {
    cfg.log = [](const std::string& line) {
      std::printf("  %s\n", line.c_str());
      std::fflush(stdout);
    };
  }

  workload::WebWorkload base;
  std::printf("torture_gate: %d seeds x %d connections x 3 arms "
              "(base seed %llu, %d threads)\n",
              cfg.seeds, cfg.connections_per_seed,
              static_cast<unsigned long long>(cfg.base_seed), cfg.threads);
  torture::CampaignResult result = torture::run_campaign(base, cfg);

  const std::string summary = result.summary_json();
  std::printf("%s", summary.c_str());

  const char* out_dir = std::getenv("TORTURE_OUT_DIR");
  if (out_dir != nullptr && *out_dir != '\0') {
    const std::string dir(out_dir);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!util::checked_write_json(dir + "/summary.json", summary)) {
      std::printf("WARN: short write to %s/summary.json\n", dir.c_str());
    }
    for (const torture::CampaignFailure& fail : result.failures) {
      std::string err;
      const std::string path = dir + "/" + fail.repro.name + ".repro";
      if (!torture::save_repro(fail.repro, path, &err)) {
        std::printf("WARN: %s\n", err.c_str());
      }
      if (!fail.trace_json.empty()) {
        const std::string tpath = dir + "/" + fail.repro.name + ".trace.json";
        if (!util::checked_write_json(tpath, fail.trace_json)) {
          std::printf("WARN: short write to %s\n", tpath.c_str());
        }
      }
    }
    std::printf("artifacts written to %s\n", dir.c_str());
  }

  if (!result.failures.empty()) {
    std::printf("torture_gate: FAIL — %zu failure(s) across %d seeds\n",
                result.failures.size(), result.seeds_run);
    for (const torture::CampaignFailure& fail : result.failures) {
      std::printf("  [%s] %s\n", fail.repro.name.c_str(),
                  fail.summary.c_str());
    }
    return 1;
  }
  std::printf("torture_gate: PASS — %d seeds, %llu connections, %llu ACKs "
              "checked, 0 failures%s\n",
              result.seeds_run,
              static_cast<unsigned long long>(result.connections_run),
              static_cast<unsigned long long>(result.acks_checked),
              result.truncated_by_budget ? " (truncated by budget)" : "");
  return 0;
}
