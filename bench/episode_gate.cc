// episode_gate: CI reconciliation check for the episode analytics layer
// (DESIGN.md §9). The episode tables are *derived* state — rebuilt from
// each connection's trace stream — so they must agree bit-exactly with
// the ground-truth accumulators the sender maintains directly:
//
//   1. every finished episode row == the stats::RecoveryLog event of the
//      same index, field for field;
//   2. the stream counters == the tcp::Metrics counters of the same
//      name, and episodes.total() == metrics.fast_recovery_events;
//   3. the table's JSON serialization is identical at threads 1/4/8 and
//      with tracing on or off (the deterministic-merge contract).
//
// Exits non-zero on the first mismatch, printing what diverged. In
// builds with PRR_TRACING=OFF there is nothing to reconcile (episode
// collection is a no-op); the gate prints a skip line and passes.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/episodes.h"
#include "obs/flight_recorder.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

int g_failures = 0;

#define GATE_CHECK(cond, ...)                         \
  do {                                                \
    if (!(cond)) {                                    \
      std::printf("FAIL: " __VA_ARGS__);              \
      std::printf("  [%s]\n", #cond);                 \
      ++g_failures;                                   \
    }                                                 \
  } while (0)

void reconcile_rows(const exp::ArmResult& r, const char* tag) {
  const auto& events = r.recovery_log.events();
  std::vector<const obs::EpisodeSummary*> finished;
  for (const auto& row : r.episodes.rows()) {
    if (row.finished()) finished.push_back(&row);
  }
  GATE_CHECK(finished.size() == events.size(),
             "%s: %zu finished episodes vs %zu recovery-log events\n", tag,
             finished.size(), events.size());
  const std::size_t n =
      finished.size() < events.size() ? finished.size() : events.size();
  for (std::size_t i = 0; i < n; ++i) {
    const obs::EpisodeSummary& ep = *finished[i];
    const stats::RecoveryEvent& ev = events[i];
    GATE_CHECK(ep.start_ns == ev.start.ns(), "%s[%zu]: start\n", tag, i);
    GATE_CHECK(ep.end_ns == ev.end.ns(), "%s[%zu]: end\n", tag, i);
    GATE_CHECK(ep.pipe_at_start == ev.pipe_at_start,
               "%s[%zu]: pipe_at_start\n", tag, i);
    GATE_CHECK(ep.ssthresh == ev.ssthresh, "%s[%zu]: ssthresh\n", tag, i);
    GATE_CHECK(ep.cwnd_at_start == ev.cwnd_at_start,
               "%s[%zu]: cwnd_at_start\n", tag, i);
    GATE_CHECK(ep.cwnd_at_exit == ev.cwnd_at_exit,
               "%s[%zu]: cwnd_at_exit (%llu vs %llu)\n", tag, i,
               (unsigned long long)ep.cwnd_at_exit,
               (unsigned long long)ev.cwnd_at_exit);
    GATE_CHECK(ep.cwnd_after_exit == ev.cwnd_after_exit,
               "%s[%zu]: cwnd_after_exit\n", tag, i);
    GATE_CHECK(ep.pipe_at_exit == ev.pipe_at_exit, "%s[%zu]: pipe_at_exit\n",
               tag, i);
    GATE_CHECK(ep.mss == ev.mss, "%s[%zu]: mss\n", tag, i);
    GATE_CHECK(ep.retransmits == ev.retransmits,
               "%s[%zu]: retransmits (%llu vs %llu)\n", tag, i,
               (unsigned long long)ep.retransmits,
               (unsigned long long)ev.retransmits);
    GATE_CHECK(ep.bytes_sent_during == ev.bytes_sent_during,
               "%s[%zu]: bytes_sent_during\n", tag, i);
    GATE_CHECK(ep.max_burst_segments == ev.max_burst_segments,
               "%s[%zu]: max_burst_segments (%llu vs %llu)\n", tag, i,
               (unsigned long long)ep.max_burst_segments,
               (unsigned long long)ev.max_burst_segments);
    GATE_CHECK(ep.interrupted_by_timeout() == ev.interrupted_by_timeout,
               "%s[%zu]: interrupted_by_timeout\n", tag, i);
    GATE_CHECK(ep.completed() == ev.completed, "%s[%zu]: completed\n", tag,
               i);
    GATE_CHECK(ep.slow_start_after == ev.slow_start_after,
               "%s[%zu]: slow_start_after\n", tag, i);
  }
}

void reconcile_counters(const exp::ArmResult& r, const char* tag) {
  const auto& s = r.episodes.stream();
  const auto& m = r.metrics;
  GATE_CHECK(s.data_segments_sent == m.data_segments_sent,
             "%s: data_segments_sent %llu vs %llu\n", tag,
             (unsigned long long)s.data_segments_sent,
             (unsigned long long)m.data_segments_sent);
  GATE_CHECK(s.retransmits_total == m.retransmits_total,
             "%s: retransmits_total %llu vs %llu\n", tag,
             (unsigned long long)s.retransmits_total,
             (unsigned long long)m.retransmits_total);
  GATE_CHECK(s.fast_retransmits == m.fast_retransmits,
             "%s: fast_retransmits %llu vs %llu\n", tag,
             (unsigned long long)s.fast_retransmits,
             (unsigned long long)m.fast_retransmits);
  GATE_CHECK(s.dsacks_received == m.dsacks_received,
             "%s: dsacks_received %llu vs %llu\n", tag,
             (unsigned long long)s.dsacks_received,
             (unsigned long long)m.dsacks_received);
  GATE_CHECK(s.undo_events == m.undo_events, "%s: undo_events\n", tag);
  GATE_CHECK(s.lost_retransmits_detected == m.lost_retransmits_detected,
             "%s: lost_retransmits_detected\n", tag);
  GATE_CHECK(s.lost_fast_retransmits == m.lost_fast_retransmits,
             "%s: lost_fast_retransmits\n", tag);
  GATE_CHECK(s.timeouts_total == m.timeouts_total, "%s: timeouts_total\n",
             tag);
  GATE_CHECK(r.episodes.total() == m.fast_recovery_events,
             "%s: episode total %zu vs fast_recovery_events %llu\n", tag,
             r.episodes.total(),
             (unsigned long long)m.fast_recovery_events);
  GATE_CHECK(r.episodes.finished() == r.recovery_log.count(),
             "%s: finished %zu vs log count %zu\n", tag,
             r.episodes.finished(), r.recovery_log.count());
}

}  // namespace

int main() {
  if (!obs::trace_compiled_in()) {
    std::printf("episode_gate: tracing compiled out (PRR_TRACING=OFF); "
                "episode tables are empty by design -- skipping.\n");
    return 0;
  }

  workload::WebWorkload pop;
  const std::vector<exp::ArmConfig> arms = {exp::ArmConfig::prr_arm(),
                                            exp::ArmConfig::rfc3517_arm(),
                                            exp::ArmConfig::linux_arm()};
  const int thread_counts[] = {1, 4, 8};

  // Reference serialization per arm, from the serial tracing-off run;
  // every other configuration must serialize identically.
  std::vector<std::string> reference;

  for (const bool trace : {false, true}) {
    for (const int threads : thread_counts) {
      exp::RunOptions opts;
      opts.connections = 3000;
      opts.seed = 11;
      opts.threads = threads;
      opts.trace = trace;
      opts.collect_episodes = true;
      const auto results = exp::run_arms(pop, arms, opts);

      for (std::size_t a = 0; a < results.size(); ++a) {
        char tag[96];
        std::snprintf(tag, sizeof(tag), "%s t=%d trace=%d",
                      results[a].name.c_str(), threads, trace ? 1 : 0);
        reconcile_rows(results[a], tag);
        reconcile_counters(results[a], tag);

        const std::string json = results[a].episodes.to_json();
        if (reference.size() <= a) {
          reference.push_back(json);
        } else {
          GATE_CHECK(json == reference[a],
                     "%s: episode table JSON differs from serial "
                     "tracing-off run\n",
                     tag);
        }
        std::printf("ok: %-24s episodes %-5zu finished %-5zu json %zu B\n",
                    tag, results[a].episodes.total(),
                    results[a].episodes.finished(), json.size());
      }
    }
  }

  if (g_failures > 0) {
    std::printf("episode_gate: %d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("episode_gate: all reconciliations passed "
              "(threads 1/4/8, tracing on/off, 3 arms)\n");
  return 0;
}
