// Extension experiment: sender-side pacing on a shallow-buffer variant of
// the Web population. The paper repeatedly observes that bursts — RFC
// 3517's cwnd-pipe refills, post-recovery window restarts, post-stall
// catch-ups — are "hard on the network"; pacing is the general remedy.
// Compares PRR and RFC 3517 with and without pacing where buffers are too
// small to absorb bursts.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

// Shallow-buffer population: queues sized to the BDP with a low floor,
// so line-rate bursts overflow.
class ShallowBufferWeb final : public workload::Population {
 public:
  workload::ConnectionSample sample(sim::Rng rng) const override {
    auto s = base_.sample(rng);
    const double bdp =
        static_cast<double>(s.bandwidth.bits_per_second()) / 8.0 *
        s.rtt.seconds_d() / 1500.0;
    s.queue_packets = static_cast<std::size_t>(std::max(6.0, bdp));
    return s;
  }

 private:
  workload::WebWorkload base_;
};

}  // namespace

int main() {
  bench::print_header(
      "Extension: pacing vs bursts on shallow buffers",
      "expected: pacing removes self-inflicted queue-overflow losses "
      "(fewer retransmissions, recoveries and lost fast retransmits, "
      "with RFC 3517 helped the most) at the cost of longer per-response "
      "serialization for short flows — the classic pacing tradeoff");

  ShallowBufferWeb pop;
  exp::RunOptions opts;
  opts.connections = 8000;
  opts.seed = 17;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  std::vector<exp::ArmConfig> arms;
  for (auto [name, kind, paced] :
       {std::tuple{"PRR", tcp::RecoveryKind::kPrr, false},
        std::tuple{"PRR + pacing", tcp::RecoveryKind::kPrr, true},
        std::tuple{"RFC 3517", tcp::RecoveryKind::kRfc3517, false},
        std::tuple{"RFC 3517 + pacing", tcp::RecoveryKind::kRfc3517,
                   true}}) {
    exp::ArmConfig a;
    a.name = name;
    a.recovery = kind;
    a.pacing = paced;
    arms.push_back(a);
  }
  auto results = exp::run_arms(pop, arms, opts);

  util::Table t({"arm", "retransmission rate", "RTO timeouts",
                 "fast recoveries", "lost fast retx rate",
                 "lossy q50 [ms]", "lossy mean [ms]"});
  for (const auto& r : results) {
    util::Samples lat = r.latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    t.add_row({r.name, util::Table::fmt_pct(r.retransmission_rate()),
               std::to_string(r.metrics.timeouts_total),
               std::to_string(r.metrics.fast_recovery_events),
               util::Table::fmt_pct(r.fraction_fast_retransmits_lost()),
               util::Table::fmt(lat.quantile(0.5), 0),
               util::Table::fmt(lat.mean(), 0)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
