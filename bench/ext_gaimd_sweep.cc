// Extension experiment: PRR under GAIMD with a swept multiplicative-
// decrease factor beta. The paper (and its reviewer response) stresses
// that PRR is orthogonal to congestion control — "designed to work in
// conjunction with any congestion control algorithm including GAIMD and
// Binomial". The proportional part must realize *whatever* reduction the
// CC chose: for each beta, the window at the end of recovery should sit
// near beta * cwnd_at_entry.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "net/loss_model.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

using namespace prr;

namespace {

struct Point {
  const char* name;
  tcp::CcKind cc;
  double beta;  // GAIMD beta, or the CC's intrinsic factor for reference
};

// One cwnd-limited bulk flow with sparse random losses; returns the mean
// cwnd_after_exit / cwnd_at_entry over clean (non-timeout) recoveries.
std::pair<double, std::size_t> realized_ratio(const Point& p,
                                              uint64_t seed) {
  sim::Simulator sim;
  tcp::ConnectionConfig cfg;
  cfg.sender.mss = 1000;
  cfg.sender.recovery = tcp::RecoveryKind::kPrr;
  cfg.sender.cc = p.cc;
  cfg.sender.gaimd_beta = p.beta;
  cfg.sender.handshake_rtt = sim::Time::milliseconds(80);
  cfg.path = net::Path::Config::symmetric(util::DataRate::mbps(8),
                                          sim::Time::milliseconds(80), 300);
  stats::RecoveryLog rlog;
  tcp::Connection conn(sim, cfg, sim::Rng(seed), nullptr, &rlog);
  conn.path().data_link().set_loss_model(
      std::make_unique<net::BernoulliLoss>(0.004, sim::Rng(seed + 1)));
  conn.write(3'000'000);
  sim.run(sim::Time::seconds(900));
  util::Samples ratios;
  for (const auto& e : rlog.events()) {
    if (!e.completed || e.interrupted_by_timeout || e.cwnd_at_start == 0)
      continue;
    ratios.add(static_cast<double>(e.cwnd_after_exit) /
               static_cast<double>(e.cwnd_at_start));
  }
  return {ratios.mean(), ratios.count()};
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: PRR realizes any congestion-control reduction "
      "(GAIMD beta sweep)",
      "for each decrease factor, PRR's exit window converges to "
      "~beta * cwnd_at_entry — the reduction is the CC's choice, the "
      "pacing of it is PRR's");

  const Point points[] = {
      {"GAIMD(1, 0.40)", tcp::CcKind::kGaimd, 0.40},
      {"GAIMD(1, 0.50)", tcp::CcKind::kGaimd, 0.50},
      {"GAIMD(1, 0.60)", tcp::CcKind::kGaimd, 0.60},
      {"GAIMD(1, 0.70)", tcp::CcKind::kGaimd, 0.70},
      {"GAIMD(1, 0.80)", tcp::CcKind::kGaimd, 0.80},
      {"NewReno (beta 0.5)", tcp::CcKind::kNewReno, 0.50},
      {"CUBIC (beta 0.7)", tcp::CcKind::kCubic, 0.70},
      // Binomial IIAD reduces by exactly one segment per event, so its
      // "beta" is window-dependent: (w-1)/w, ~0.95+ at typical windows.
      {"Binomial IIAD (w-1)", tcp::CcKind::kBinomial, 0.95},
  };

  util::Table t({"congestion control", "target beta",
                 "realized cwnd_exit / cwnd_entry", "recoveries"});
  for (const auto& p : points) {
    auto [ratio, n] = realized_ratio(p, 77);
    t.add_row({p.name, util::Table::fmt(p.beta, 2),
               util::Table::fmt(ratio, 2), std::to_string(n)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected: each realized ratio tracks its CC's beta — PRR itself "
      "imposes no particular reduction.\n");
  return 0;
}
