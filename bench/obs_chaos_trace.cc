// CI gate for the observability layer: runs the chaos suite with the
// flight recorder and invariant checker attached to every connection,
// then fails (non-zero exit) unless
//   1. the metrics registry's tcp.* / exp.* totals reconcile exactly
//      with the ArmResult aggregates they shadow,
//   2. the registry JSON export parses,
//   3. a forced-quarantine connection carries a flight-recorder tail
//      whose Perfetto trace-event JSON parses and names the invariant
//      violation, and replay reproduces it.
// Under a PRR_TRACING=OFF build the sweep still runs; the trace-content
// assertions relax to "no records were written".
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "exp/scenarios.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

uint64_t counter_value(const exp::ArmResult& r, const char* name) {
  const obs::Counter* c = r.registry.find_counter(name);
  check(c != nullptr, std::string("registry missing counter ") + name);
  return c != nullptr ? c->value() : 0;
}

// Every registry total that shadows an ArmResult aggregate must agree
// exactly — the registry is folded per connection on the worker shards
// and merged, so any drift means double counting or a lost shard.
void reconcile(const std::string& scenario, const exp::ArmResult& r) {
  auto eq = [&](const char* name, uint64_t expect) {
    check(counter_value(r, name) == expect,
          scenario + ": " + name + " != ArmResult aggregate");
  };
  eq("tcp.data_segments_sent", r.metrics.data_segments_sent);
  eq("tcp.bytes_sent", r.metrics.bytes_sent);
  eq("tcp.retransmits_total", r.metrics.retransmits_total);
  eq("tcp.fast_retransmits", r.metrics.fast_retransmits);
  eq("tcp.timeouts_total", r.metrics.timeouts_total);
  eq("tcp.fast_recovery_events", r.metrics.fast_recovery_events);
  eq("tcp.undo_events", r.metrics.undo_events);
  eq("exp.connections_run", r.connections_run);
  eq("exp.connections_aborted", r.metrics.connections_aborted);

  const obs::LogHistogram* h = r.registry.find_histogram(
      "tcp.retransmits_per_conn");
  check(h != nullptr && h->sum() == r.metrics.retransmits_total &&
            h->count() == r.connections_run,
        scenario + ": tcp.retransmits_per_conn histogram disagrees");

  const std::string json = r.registry.to_json();
  check(obs::json_valid(json), scenario + ": registry JSON does not parse");

  const uint64_t written = counter_value(r, "obs.trace.records_written");
  if (obs::trace_compiled_in()) {
    check(written > 0, scenario + ": tracing on but 0 records written");
  } else {
    check(written == 0, scenario + ": tracing compiled out but records "
                        "were written");
  }
}

}  // namespace

int main() {
  bench::print_header(
      "observability CI gate: traced chaos sweep + artifact validation",
      "registry totals must reconcile with ArmResult aggregates under "
      "every chaos regime, and quarantine trace tails must export valid "
      "Perfetto JSON");

  std::printf("tracing compiled %s\n\n",
              obs::trace_compiled_in() ? "IN" : "OUT");

  util::Table t({"scenario", "acks checked", "violations", "quarantined",
                 "trace records", "registry bytes"});
  for (const exp::ChaosSpec& spec : exp::standard_chaos_suite()) {
    workload::WebWorkload base;
    exp::ChaosPopulation pop(base, spec.profile);

    exp::RunOptions opts;
    opts.connections = 400;
    opts.seed = 97;
    opts.threads = 0;  // parallel merge must still reconcile exactly
    opts.check_invariants = true;
    opts.trace = true;
    opts.scenario = spec.name;

    const exp::ArmResult r =
        exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
    reconcile(spec.name, r);
    check(r.invariant_violations == 0 && r.quarantined.empty(),
          spec.name + ": chaos run tripped invariants");
    for (const auto& rec : r.quarantined) {
      std::printf("QUARANTINED: %s\n", rec.summary().c_str());
      check(obs::json_valid(rec.trace_json()),
            spec.name + ": quarantine trace JSON does not parse");
    }
    t.add_row({spec.name, std::to_string(r.acks_checked),
               std::to_string(r.invariant_violations),
               std::to_string(r.quarantined.size()),
               std::to_string(counter_value(r, "obs.trace.records_written")),
               std::to_string(r.registry.to_json().size())});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Force one quarantine and validate the whole artifact chain: tail
  // captured, Perfetto JSON parses, violation record present, replay
  // reproduces with a tail of its own.
  {
    workload::WebWorkload pop;
    exp::RunOptions opts;
    opts.connections = 30;
    opts.seed = 20110501;
    opts.threads = 1;
    opts.check_invariants = true;
    opts.trace = true;
    opts.inject_violation_connection = 11;
    opts.inject_violation_on_ack = 3;
    opts.trace_ring_records = 1u << 16;
    opts.trace_tail_records = 1u << 16;

    const exp::ArmResult r =
        exp::run_arm(pop, exp::ArmConfig::prr_arm(), opts);
    check(r.quarantined.size() == 1,
          "forced violation did not quarantine exactly one connection");
    if (!r.quarantined.empty()) {
      const exp::QuarantineRecord& rec = r.quarantined[0];
      const std::string json = rec.trace_json();
      check(obs::json_valid(json),
            "quarantine Perfetto JSON does not parse");
      if (obs::trace_compiled_in()) {
        check(!rec.trace_tail.empty(), "quarantine record has no trace tail");
        check(json.find("\"name\":\"invariant\"") != std::string::npos,
              "quarantine trace lacks the invariant-violation record");
      }
      exp::Experiment experiment(pop, opts);
      const exp::ReplayResult replay =
          experiment.replay(exp::ArmConfig::prr_arm(), rec);
      check(replay.reproduced(rec), "replay did not reproduce the failure");
      if (obs::trace_compiled_in()) {
        check(!replay.trace_tail.empty(), "replay produced no trace tail");
      }
    }
    std::printf("forced-quarantine artifact chain: %s\n",
                g_failures == 0 ? "ok" : "FAILED");
  }

  std::printf("\nobs chaos gate: %d failure(s)%s\n", g_failures,
              g_failures == 0 ? " -- PASS" : " -- FAIL");
  return g_failures == 0 ? 0 : 1;
}
