// Extension experiment: ECN-marked congestion signals with PRR-paced CWR
// reductions (RFC 6937 explicitly covers non-loss window reductions).
// The paper's servers ran with ECN disabled (§5.1); this shows what the
// same machinery buys once the signal is a mark instead of a drop: the
// entire fast-recovery problem the paper fixes simply disappears for
// congestion that AQM can signal, while PRR still paces the reduction.
#include <cstdio>

#include "bench_common.h"
#include "workload/video_workload.h"

using namespace prr;

namespace {

// Bulk video population on AQM bottlenecks: a marking threshold of a
// third of the queue. Exogenous (GE) losses remain — ECN only removes
// the congestion-drop component.
class AqmVideo final : public workload::Population {
 public:
  explicit AqmVideo(bool mark) : mark_(mark) {}
  workload::ConnectionSample sample(sim::Rng rng) const override {
    auto s = base_.sample(rng);
    if (mark_) s.ecn_mark_threshold = s.queue_packets / 3;
    return s;
  }

 private:
  workload::VideoWorkload base_;
  bool mark_;
};

}  // namespace

int main() {
  bench::print_header(
      "Extension: ECN + PRR-paced CWR on bulk video",
      "expected: with AQM marking, congestion is signalled without "
      "drops — CWR events replace a chunk of fast recoveries, cutting "
      "retransmissions while keeping transfer times comparable");

  exp::RunOptions opts;
  opts.connections = 300;
  opts.seed = 23;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  util::Table t({"arm", "retransmission rate", "FR events", "CWR events",
                 "RTOs", "transmit time [s/conn]"});
  for (auto [name, ecn] : {std::pair{"drop-tail, no ECN", false},
                           std::pair{"AQM marking + ECN", true}}) {
    AqmVideo pop(ecn);
    exp::ArmConfig arm = exp::ArmConfig::prr_arm();
    arm.name = name;
    arm.ecn = ecn;
    exp::ArmResult r = exp::run_arm(pop, arm, opts);
    t.add_row({name, util::Table::fmt_pct(r.retransmission_rate()),
               std::to_string(r.metrics.fast_recovery_events),
               std::to_string(r.metrics.ecn_cwr_events),
               std::to_string(r.metrics.timeouts_total),
               util::Table::fmt(
                   r.total_network_transmit_time.seconds_d() /
                       static_cast<double>(r.connections_run),
                   1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
