// Shared helpers for the experiment binaries in bench/: the standard
// three recovery arms, quantile-row formatting, and paper-vs-measured
// table printing.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "util/quantiles.h"
#include "util/table.h"

namespace prr::bench {

// The paper's standard 3-way comparison (all CUBIC + FACK, §5).
std::vector<exp::ArmConfig> three_way_arms();

// Formats a quantile row over the given sample set.
std::vector<std::string> quantile_row(const std::string& label,
                                      const util::Samples& s,
                                      const std::vector<double>& quantiles,
                                      int precision = 0,
                                      bool with_mean = false);

// Prints a header identifying the experiment and what the paper reports.
void print_header(const std::string& experiment,
                  const std::string& paper_summary);

}  // namespace prr::bench
