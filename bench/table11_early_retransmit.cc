// Table 11 and §6.1: the 4-way early-retransmit experiment on a
// short-response Web population with real Internet-style reordering:
// baseline (no ER), naive ER, ER + reordering mitigation (M1), and ER +
// both mitigations (M1 + delayed-retransmit timer, M2).
//
// Paper: naive ER raises fast retransmits 31% for a 2% timeout cut, with
// a 27% jump in undo (spurious) events. ER with both mitigations cuts
// timeouts-in-Disorder by 34% with only ~6% of early retransmits
// spurious, leaving total retransmissions ~flat (+1%) and reducing lossy
// short-response latency up to ~8.5%.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 11 / §6.1: early retransmit 4-way",
      "naive ER: fast retx +31%, undo +27%; ER+M1+M2: timeouts in "
      "Disorder -34%, ~6% spurious, latency of short lossy responses "
      "down up to 8.5%");

  // Short responses (tail losses dominate) on paths with enough
  // reordering to punish a naive ER.
  workload::WebWorkloadParams p;
  p.mean_response_bytes = 5200;
  p.tiny_response_fraction = 0.3;
  p.reorder_prob = 0.004;
  workload::WebWorkload pop(p);

  std::vector<exp::ArmConfig> arms;
  {
    exp::ArmConfig a = exp::ArmConfig::prr_arm();
    a.name = "baseline (no ER)";
    arms.push_back(a);
    a.name = "naive ER";
    a.early_retransmit = tcp::EarlyRetransmitMode::kNaive;
    arms.push_back(a);
    a.name = "ER + M1 (reorder)";
    a.early_retransmit = tcp::EarlyRetransmitMode::kReorderMitigation;
    arms.push_back(a);
    a.name = "ER + M1 + M2 (delay)";
    a.early_retransmit = tcp::EarlyRetransmitMode::kBothMitigations;
    arms.push_back(a);
  }

  exp::RunOptions opts;
  opts.connections = 15000;
  opts.seed = 6;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  auto results = exp::run_arms(pop, arms, opts);
  const auto& base = results[0].metrics;

  auto pct_delta = [](uint64_t v, uint64_t b) {
    if (b == 0) return std::string("-");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+.0f%%",
                  (static_cast<double>(v) - static_cast<double>(b)) /
                      static_cast<double>(b) * 100);
    return std::string(buf);
  };

  util::Table t({"arm", "fast retx", "RTOs", "RTO in Disorder",
                 "undo events", "ER fired", "ER spurious", "total retx"});
  for (const auto& r : results) {
    const auto& m = r.metrics;
    t.add_row({r.name,
               std::to_string(m.fast_retransmits) + " (" +
                   pct_delta(m.fast_retransmits, base.fast_retransmits) +
                   ")",
               std::to_string(m.timeouts_total) + " (" +
                   pct_delta(m.timeouts_total, base.timeouts_total) + ")",
               std::to_string(m.timeouts_in_disorder) + " (" +
                   pct_delta(m.timeouts_in_disorder,
                             base.timeouts_in_disorder) +
                   ")",
               std::to_string(m.undo_events) + " (" +
                   pct_delta(m.undo_events, base.undo_events) + ")",
               std::to_string(m.er_triggered),
               m.er_triggered == 0
                   ? "-"
                   : util::Table::fmt_pct(
                         static_cast<double>(m.er_spurious) /
                         static_cast<double>(m.er_triggered)),
               std::to_string(m.retransmits_total) + " (" +
                   pct_delta(m.retransmits_total, base.retransmits_total) +
                   ")"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Table 11 proper: latency of responses that ER can help (lossy, more
  // than one segment).
  util::Table lat({"quantile", "baseline [ms]", "ER + both mitigations"});
  util::Samples b = results[0].latency.latency_ms(
      stats::LatencyTracker::Filter::kWithRetransmit, 1500);
  util::Samples er = results[3].latency.latency_ms(
      stats::LatencyTracker::Filter::kWithRetransmit, 1500);
  for (double q : {5.0, 10.0, 50.0, 90.0, 99.0}) {
    const double bv = b.quantile(q / 100.0);
    const double ev = er.quantile(q / 100.0);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0f [%+.1f%%]", ev,
                  bv > 0 ? (ev - bv) / bv * 100 : 0.0);
    lat.add_row({util::Table::fmt(q, 0), util::Table::fmt(bv, 0), buf});
  }
  std::printf("%s\n", lat.to_string().c_str());
  std::printf(
      "Paper Table 11 (ms deltas): 5%%: -8.5%%, 10%%: -5.6%%, 50%%: "
      "-8.0%%, 90%%: -3.3%%, 99%%: -0.6%%.\n");
  return 0;
}
