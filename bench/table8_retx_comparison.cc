// Table 8: retransmission statistics and timeouts of PRR and RFC 3517
// relative to the Linux baseline (3-way, common random numbers).
//
// Paper (deltas vs Linux): both PRR and RFC 3517 send a few percent more
// total/fast retransmissions (they keep transmitting where Linux stalls),
// both reduce timeouts-in-recovery (PRR -5.0%, RFC 3517 -2.5%), and both
// lose more retransmissions than Linux with RFC 3517 markedly worse
// (+198%) than PRR (+117%) because of its bursts.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

std::string delta(uint64_t v, uint64_t base) {
  if (base == 0) return "-";
  const double d = (static_cast<double>(v) - static_cast<double>(base)) /
                   static_cast<double>(base);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+lld [%+.1f%%]",
                (long long)(v - base), d * 100);
  return buf;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 8: retransmission statistics vs the Linux baseline",
      "PRR: total +2.5%, fast +13%, timeouts-in-recovery -5.0%, lost "
      "retx +117%. RFC 3517: +3.7%, +17%, -2.5%, +198%.");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 7;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  auto results = exp::run_arms(pop, bench::three_way_arms(), opts);
  const auto& linux_arm = results[0].metrics;
  const auto& rfc = results[1].metrics;
  const auto& prr = results[2].metrics;

  util::Table t({"retransmission type", "Linux baseline",
                 "RFC 3517 diff", "PRR diff", "paper RFC diff",
                 "paper PRR diff"});
  t.add_row({"Total retransmissions",
             std::to_string(linux_arm.retransmits_total),
             delta(rfc.retransmits_total, linux_arm.retransmits_total),
             delta(prr.retransmits_total, linux_arm.retransmits_total),
             "+3.7%", "+2.5%"});
  t.add_row({"Fast retransmissions",
             std::to_string(linux_arm.fast_retransmits),
             delta(rfc.fast_retransmits, linux_arm.fast_retransmits),
             delta(prr.fast_retransmits, linux_arm.fast_retransmits),
             "+17%", "+13%"});
  t.add_row({"Timeouts in recovery",
             std::to_string(linux_arm.timeouts_in_recovery),
             delta(rfc.timeouts_in_recovery,
                   linux_arm.timeouts_in_recovery),
             delta(prr.timeouts_in_recovery,
                   linux_arm.timeouts_in_recovery),
             "-2.5%", "-5.0%"});
  t.add_row({"Lost retransmissions",
             std::to_string(linux_arm.lost_retransmits_detected),
             delta(rfc.lost_retransmits_detected,
                   linux_arm.lost_retransmits_detected),
             delta(prr.lost_retransmits_detected,
                   linux_arm.lost_retransmits_detected),
             "+198%", "+117%"});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
