// Table 9: TCP latency (ms) for two representative Web services, for
// responses with at least one retransmission, 3-way.
//
// Paper: compared to Linux recovery, PRR and RFC 3517 reduce the latency
// of lossy responses by 3-10% across quantiles (PRR -3.5% / -9.8% mean
// on the two services), and overall latency by 3-5%.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

void run_service(const char* name, const workload::WebWorkloadParams& p,
                 uint64_t seed) {
  workload::WebWorkload pop(p);
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = seed;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  auto results = exp::run_arms(pop, bench::three_way_arms(), opts);

  const std::vector<double> qs = {25, 50, 90, 99};
  util::Samples base = results[0].latency.latency_ms(
      stats::LatencyTracker::Filter::kWithRetransmit);

  util::Table t({"quantile", "Linux [ms]", "RFC 3517", "PRR"});
  auto delta_str = [](double v, double b) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%+.0f [%+.1f%%]", v - b,
                  b > 0 ? (v - b) / b * 100 : 0.0);
    return std::string(buf);
  };
  for (double q : qs) {
    util::Samples rfc = results[1].latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    util::Samples prr = results[2].latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    const double b = base.quantile(q / 100.0);
    t.add_row({util::Table::fmt(q, 0), util::Table::fmt(b, 0),
               delta_str(rfc.quantile(q / 100.0), b),
               delta_str(prr.quantile(q / 100.0), b)});
  }
  {
    util::Samples rfc = results[1].latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    util::Samples prr = results[2].latency.latency_ms(
        stats::LatencyTracker::Filter::kWithRetransmit);
    t.add_row({"mean", util::Table::fmt(base.mean(), 0),
               delta_str(rfc.mean(), base.mean()),
               delta_str(prr.mean(), base.mean())});
  }
  std::printf("---- %s (responses with >=1 retransmission) ----\n%s\n",
              name, t.to_string().c_str());

  // Overall latency (paper: 3-5% reduction including loss-free).
  util::Samples all_base = results[0].latency.latency_ms();
  util::Samples all_prr = results[2].latency.latency_ms();
  std::printf("overall mean latency: Linux %.0f ms, PRR %.0f ms (%+.1f%%)\n\n",
              all_base.mean(), all_prr.mean(),
              (all_prr.mean() - all_base.mean()) / all_base.mean() * 100);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 9: TCP latency for two Web services (lossy responses)",
      "PRR and RFC 3517 cut lossy-response latency 3-10% vs Linux; "
      "overall latency 3-5%");

  // Search-like: small, single-burst responses, moderate RTTs.
  workload::WebWorkloadParams search;
  search.mean_requests_per_conn = 2.0;
  search.mean_response_bytes = 11000;
  search.tiny_response_fraction = 0.2;
  run_service("Google-Search-like service", search, 11);

  // Page-ads-like: slightly larger responses on worse networks.
  workload::WebWorkloadParams ads;
  ads.mean_requests_per_conn = 1.5;
  ads.mean_response_bytes = 14000;
  ads.tiny_response_fraction = 0.15;
  ads.clean_path_fraction = 0.55;
  ads.mean_rtt_ms = 160;
  run_service("Page-Ads-like service", ads, 12);
  return 0;
}
