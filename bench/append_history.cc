// append_history: folds the machine-readable outputs of the perf benches
// (BENCH_SWEEP.json from bench_sweep_scaling, BENCH_TRACE.json from
// bench_trace_overhead) into BENCH_HISTORY.jsonl -- one line per commit,
// tagged with the commit SHA and the machine it ran on, so perf
// regressions show up as a trend across CI runs rather than a
// single-run number nobody can compare.
//
// Environment:
//   BENCH_SWEEP_JSON     input path  (default "BENCH_SWEEP.json")
//   BENCH_TRACE_JSON     input path  (default "BENCH_TRACE.json")
//   BENCH_HISTORY_JSONL  output path (default "BENCH_HISTORY.jsonl")
//   GITHUB_SHA           commit tag  (default "local")
//
// A missing input is recorded as null rather than an error, so the tool
// also works when only one bench ran.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "host_fingerprint.h"
#include "obs/json.h"
#include "util/checked_write.h"

using namespace prr;

namespace {

// Reads a whole file; empty string if unreadable.
std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

// Collapses pretty-printed JSON onto one line (newlines and their
// indentation removed) so the embedded document keeps the history file
// genuinely one-record-per-line. None of the bench JSON carries string
// values with embedded newlines, so this cannot corrupt a value.
std::string minify(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  std::size_t i = 0;
  while (i < json.size()) {
    const char c = json[i];
    if (c == '\n' || c == '\r') {
      ++i;
      while (i < json.size() && (json[i] == ' ' || json[i] == '\t')) ++i;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace

int main() {
  const char* sweep_env = std::getenv("BENCH_SWEEP_JSON");
  const char* trace_env = std::getenv("BENCH_TRACE_JSON");
  const char* hist_env = std::getenv("BENCH_HISTORY_JSONL");
  const char* sha_env = std::getenv("GITHUB_SHA");

  const std::string sweep_path = sweep_env ? sweep_env : "BENCH_SWEEP.json";
  const std::string trace_path = trace_env ? trace_env : "BENCH_TRACE.json";
  const std::string hist_path =
      hist_env ? hist_env : "BENCH_HISTORY.jsonl";
  const std::string sha = sha_env && *sha_env ? sha_env : "local";

  // Full fingerprint (host, CPU model, core count) so perf_ratchet can
  // refuse to compare runs from different machines.
  const bench::HostFingerprint fp = bench::host_fingerprint();

  const std::string sweep = slurp(sweep_path);
  const std::string trace = slurp(trace_path);
  const bool sweep_ok = obs::json_valid(sweep);
  const bool trace_ok = obs::json_valid(trace);
  if (!sweep.empty() && !sweep_ok) {
    std::fprintf(stderr, "append_history: %s is not valid JSON\n",
                 sweep_path.c_str());
    return 1;
  }
  if (!trace.empty() && !trace_ok) {
    std::fprintf(stderr, "append_history: %s is not valid JSON\n",
                 trace_path.c_str());
    return 1;
  }
  if (sweep.empty() && trace.empty()) {
    std::fprintf(stderr,
                 "append_history: neither %s nor %s exists; nothing to "
                 "record\n",
                 sweep_path.c_str(), trace_path.c_str());
    return 1;
  }

  const std::string line =
      "{\"sha\":" + obs::json_quote(sha) +
      ",\"machine\":" + bench::host_fingerprint_json(fp) +
      ",\"sweep\":" + (sweep_ok ? minify(sweep) : "null") +
      ",\"trace\":" + (trace_ok ? minify(trace) : "null") + "}\n";

  // A torn append corrupts the whole JSONL history; fail loudly.
  if (!util::checked_append_line(hist_path, line)) {
    std::fprintf(stderr, "append_history: short write to %s\n",
                 hist_path.c_str());
    return 1;
  }
  std::printf("append_history: recorded %s (%zu B) -> %s\n", sha.c_str(),
              line.size(), hist_path.c_str());
  return 0;
}
