// Table 3: fast-recovery statistics on both populations — fast
// retransmits per fast-recovery event, DSACK rates (spurious
// retransmission evidence), and lost (fast) retransmits.
//
// Paper: ~3 fast retransmits per FR event in both DCs (correlated loss);
// DC1: DSACKs/FR 12%, DSACKs/retransmit 3.8%, lost fast retransmits 6%;
// DC2: 2.93 fast retx/FR, DSACKs/FR 4%, lost fast retransmits 9%.
#include <cstdio>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "workload/video_workload.h"
#include "workload/web_workload.h"

using namespace prr;

namespace {

// The seven counters Table 3 is built from. Primary source is the
// episode table (derived purely from trace records); in builds with
// tracing compiled out it falls back to the tcp::Metrics accumulator.
// The two agree exactly — bench/episode_gate asserts it — so the
// printed numbers are identical either way.
struct Table3Counts {
  uint64_t fast_retransmits = 0;
  uint64_t fast_recovery_events = 0;
  uint64_t dsacks_received = 0;
  uint64_t retransmits_total = 0;
  uint64_t lost_fast_retransmits = 0;
  uint64_t lost_retransmits_detected = 0;
  uint64_t undo_events = 0;
};

Table3Counts counts_for(const exp::ArmResult& r) {
  Table3Counts c;
  if (obs::trace_compiled_in()) {
    const auto& s = r.episodes.stream();
    c.fast_retransmits = s.fast_retransmits;
    c.fast_recovery_events = r.episodes.total();
    c.dsacks_received = s.dsacks_received;
    c.retransmits_total = s.retransmits_total;
    c.lost_fast_retransmits = s.lost_fast_retransmits;
    c.lost_retransmits_detected = s.lost_retransmits_detected;
    c.undo_events = s.undo_events;
  } else {
    const auto& m = r.metrics;
    c.fast_retransmits = m.fast_retransmits;
    c.fast_recovery_events = m.fast_recovery_events;
    c.dsacks_received = m.dsacks_received;
    c.retransmits_total = m.retransmits_total;
    c.lost_fast_retransmits = m.lost_fast_retransmits;
    c.lost_retransmits_detected = m.lost_retransmits_detected;
    c.undo_events = m.undo_events;
  }
  return c;
}

void print_dc(const char* name, const exp::ArmResult& r,
              const char* paper_col[5]) {
  const Table3Counts m = counts_for(r);
  auto ratio = [](uint64_t a, uint64_t b) {
    return b == 0 ? std::string("-")
                  : util::Table::fmt(static_cast<double>(a) /
                                         static_cast<double>(b),
                                     2);
  };
  auto ratio_pct = [](uint64_t a, uint64_t b) {
    return b == 0 ? std::string("-")
                  : util::Table::fmt_pct(static_cast<double>(a) /
                                         static_cast<double>(b));
  };
  util::Table t({"metric", "paper", "measured"});
  t.add_row({"Fast retransmits / FR event", paper_col[0],
             ratio(m.fast_retransmits, m.fast_recovery_events)});
  t.add_row({"DSACKs / FR event", paper_col[1],
             ratio_pct(m.dsacks_received, m.fast_recovery_events)});
  t.add_row({"DSACKs / retransmit", paper_col[2],
             ratio_pct(m.dsacks_received, m.retransmits_total)});
  t.add_row({"Lost fast retransmits / FR event", paper_col[3],
             ratio_pct(m.lost_fast_retransmits, m.fast_recovery_events)});
  t.add_row({"Lost retransmits / retransmit", paper_col[4],
             ratio_pct(m.lost_retransmits_detected, m.retransmits_total)});
  std::printf("---- %s ----\n", name);
  std::printf("FR events: %llu, undo events: %llu\n",
              (unsigned long long)m.fast_recovery_events,
              (unsigned long long)m.undo_events);
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3: Fast-recovery statistics (per FR event / per retransmit)",
      "DC1: 3.15 fast retx per FR, DSACKs/FR 12%, DSACKs/retx 3.8%, lost "
      "fast retx 6%, lost retx/retx 1.9%. DC2: 2.93, 4%, 1.4%, 9%, 3.1%.");

  exp::RunOptions web_opts;
  web_opts.connections = 8000;
  web_opts.seed = 2;
  web_opts.threads = 0;  // parallel sweep: byte-identical to serial
  web_opts.collect_episodes = true;
  exp::ArmResult dc1 =
      exp::run_arm(workload::WebWorkload(), exp::ArmConfig::linux_arm(),
                   web_opts);
  const char* dc1_paper[5] = {"3.15", "12%", "3.8%", "6%", "1.9%"};
  print_dc("DC1 (Web population)", dc1, dc1_paper);

  exp::RunOptions video_opts;
  video_opts.connections = 400;
  video_opts.seed = 3;
  video_opts.threads = 0;  // parallel sweep: byte-identical to serial
  video_opts.collect_episodes = true;
  exp::ArmResult dc2 = exp::run_arm(workload::VideoWorkload(),
                                    exp::ArmConfig::linux_arm(), video_opts);
  const char* dc2_paper[5] = {"2.93", "4%", "1.4%", "9%", "3.1%"};
  print_dc("DC2 (video population)", dc2, dc2_paper);
  return 0;
}
