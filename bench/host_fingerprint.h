// Host fingerprint shared by the perf tooling: bench_sweep_scaling
// stamps it into BENCH_SWEEP.json, append_history into every
// BENCH_HISTORY.jsonl line, and perf_ratchet compares against it so a
// throughput bar set on one machine is never applied to another. The
// fingerprint is (hostname, CPU model string, hardware concurrency) —
// enough to tell container reschedules and instance-type changes apart
// from real regressions.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/json.h"

namespace prr::bench {

struct HostFingerprint {
  std::string host = "unknown";
  std::string cpu_model = "unknown";
  unsigned hardware_concurrency = 0;
};

// First "model name" line of /proc/cpuinfo; "unknown" when unreadable
// (non-Linux, restricted container).
inline std::string cpu_model_name() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "rb");
  if (f == nullptr) return "unknown";
  char line[512];
  std::string model = "unknown";
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    ++colon;
    while (*colon == ' ' || *colon == '\t') ++colon;
    model = colon;
    while (!model.empty() &&
           (model.back() == '\n' || model.back() == '\r')) {
      model.pop_back();
    }
    break;
  }
  std::fclose(f);
  return model;
}

inline HostFingerprint host_fingerprint() {
  HostFingerprint fp;
  char host[256] = "unknown";
  if (gethostname(host, sizeof(host) - 1) == 0) fp.host = host;
  fp.cpu_model = cpu_model_name();
  fp.hardware_concurrency = std::thread::hardware_concurrency();
  return fp;
}

// {"host":...,"cpu_model":...,"hardware_concurrency":N} — the shared
// "machine" object shape.
inline std::string host_fingerprint_json(const HostFingerprint& fp) {
  return "{\"host\":" + obs::json_quote(fp.host) +
         ",\"cpu_model\":" + obs::json_quote(fp.cpu_model) +
         ",\"hardware_concurrency\":" +
         std::to_string(fp.hardware_concurrency) + "}";
}

}  // namespace prr::bench
