// Table 4: loss-recovery related features and defaults. The paper lists
// the Linux feature set its baseline ships with; this prints the
// corresponding feature inventory of this implementation so the mapping
// is auditable.
#include <cstdio>

#include "bench_common.h"
#include "tcp/sender.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 4: loss-recovery features and defaults",
      "Linux 2.6 defaults: IW10, CUBIC, SACK/D-SACK/FACK on, rate "
      "halving, limited transmit, dynamic dupthresh, min RTO 200 ms, "
      "F-RTO, cwnd undo (Eifel)");

  tcp::SenderConfig def;
  util::Table t({"feature", "RFC", "this implementation"});
  t.add_row({"Initial cwnd", "3390/6928",
             std::to_string(def.initial_cwnd_segments) + " segments"});
  t.add_row({"Congestion control", "5681",
             "CUBIC default (NewReno, GAIMD pluggable)"});
  t.add_row({"SACK", "2018", "always on (receiver option)"});
  t.add_row({"D-SACK", "3708/2883",
             def.dsack_undo ? "on (undo via DSACK)" : "off"});
  t.add_row({"Fast recovery", "3517/6937",
             "pluggable: PRR (default) / Linux rate halving / RFC 3517"});
  t.add_row({"FACK loss marking", "-", def.use_fack ? "on" : "off"});
  t.add_row({"Limited transmit", "3042",
             def.limited_transmit ? "on" : "off"});
  t.add_row({"Dynamic dupthresh", "-",
             def.dynamic_dupthresh ? "on (reordering raises it)" : "off"});
  t.add_row({"Lost-retransmit detection", "-",
             def.detect_lost_retransmits ? "on" : "off"});
  t.add_row({"RTO", "6298",
             "min " + std::to_string(def.rto.min_rto.ms()) + " ms, max " +
                 std::to_string(def.rto.max_rto.ms() / 1000) + " s"});
  t.add_row({"F-RTO", "5682",
             def.frto ? "on (spurious-RTO undo)" : "off"});
  t.add_row({"Timestamps / Eifel detection", "7323/3522",
             "per-connection (12% of clients in the Web population)"});
  t.add_row({"Early retransmit", "5827",
             "off by default; naive / +reorder / +delay modes"});
  t.add_row({"Cwnd undo (Eifel response)", "3522",
             def.dsack_undo ? "on" : "off"});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
