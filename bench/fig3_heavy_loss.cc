// Figure 3: PRR under heavy losses (segments 1-4 and 11-16 dropped).
// After the first cluster pipe > ssthresh and the proportional part sends
// on alternate ACKs; the second cluster pushes pipe below ssthresh and
// the slow-start part transmits (up to) two segments per ACK, avoiding
// both a timeout and an RFC 3517-style burst.
#include <cstdio>

#include "bench_common.h"
#include "exp/scenarios.h"

using namespace prr;

int main() {
  bench::print_header(
      "Figure 3: PRR under heavy losses (drop segments 1-4 and 11-16)",
      "proportional part on alternate ACKs, then slow-start part at two "
      "segments per ACK once pipe < ssthresh; no timeout");

  for (auto [name, kind] :
       {std::pair{"PRR", tcp::RecoveryKind::kPrr},
        std::pair{"Linux rate halving", tcp::RecoveryKind::kLinuxRateHalving},
        std::pair{"RFC 3517", tcp::RecoveryKind::kRfc3517}}) {
    exp::FigureRun run =
        exp::run_figure_scenario(exp::FigureScenario::fig3(kind));
    std::printf("---- %s ----\n", name);
    std::printf("%s\n", run.trace.render_ascii(64).c_str());
    const auto& events = run.recovery_log.events();
    uint64_t max_burst = 0;
    for (const auto& e : events)
      max_burst = std::max(max_burst, e.max_burst_segments);
    std::printf(
        "retransmits=%llu  timeouts=%llu  max per-ACK burst in recovery="
        "%llu segs  all data ACKed at %lld ms\n\n",
        (unsigned long long)run.metrics.retransmits_total,
        (unsigned long long)run.metrics.timeouts_total,
        (unsigned long long)max_burst, (long long)run.all_acked_at.ms());
  }
  return 0;
}
