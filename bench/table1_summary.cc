// Table 1: global TCP/HTTP summary of the Web population (paper: sampled
// from Google Web servers for one week in May 2011). Checks that the
// synthetic population matches the paper's aggregates: ~3.1 requests per
// connection, ~7.5 kB mean response, ~2.8% segment retransmission rate,
// ~6.1% of responses with retransmissions.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 1: Summary of TCP and HTTP statistics (Web population)",
      "avg 3.1 requests/conn; avg response 7.5 kB; avg retransmission "
      "rate 2.8%; 6.1% of responses with TCP retransmissions");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 3000;
  opts.seed = 20110501;
  opts.threads = 0;  // parallel sweep: byte-identical to serial

  exp::ArmResult r = exp::run_arm(pop, exp::ArmConfig::linux_arm(), opts);

  double total_requests = 0, total_bytes = 0, completed = 0;
  for (const auto& resp : r.latency.responses()) {
    if (!resp.completed) continue;
    ++completed;
    total_bytes += static_cast<double>(resp.bytes);
  }
  total_requests = completed;

  util::Table t({"metric", "paper", "measured"});
  t.add_row({"connections", "billions (sampled)",
             std::to_string(r.connections_run)});
  t.add_row({"avg requests per connection", "3.1",
             util::Table::fmt(total_requests /
                                  static_cast<double>(r.connections_run),
                              2)});
  t.add_row({"avg response size [kB]", "7.5",
             util::Table::fmt(total_bytes / completed / 1000.0, 2)});
  t.add_row({"avg retransmission rate", "2.8%",
             util::Table::fmt_pct(r.retransmission_rate())});
  t.add_row({"responses with retransmissions", "6.1%",
             util::Table::fmt_pct(r.latency.fraction_with_retransmit())});
  t.add_row({"connections aborted (user gone)", "-",
             util::Table::fmt_pct(
                 static_cast<double>(r.metrics.connections_aborted) /
                 static_cast<double>(r.connections_run))});
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
