// Table 7: cwnd after recovery (segments), quantiles per algorithm.
//
// Paper: PRR 10%:2 50%:6 90%:15 99%:35; RFC 3517 slightly below PRR;
// Linux roughly half (median 3) because it exits recovery at pipe+1 —
// for short responses over 50% of Linux recoveries end with cwnd < 3.
#include <cstdio>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Table 7: cwnd after recovery (segments)",
      "PRR ~= RFC 3517 (exit at ssthresh); Linux about half (pipe+1), "
      "with >50% of events ending below 3 segments");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 7;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  opts.collect_episodes = true;
  auto results = exp::run_arms(pop, bench::three_way_arms(), opts);

  const std::vector<double> qs = {10, 25, 50, 75, 90, 95, 99};
  util::Table t({"arm", "q10", "q25", "q50", "q75", "q90", "q95", "q99",
                 "frac < 3 segs"});
  for (const auto& r : results) {
    // Episode table primary, RecoveryLog fallback (tracing compiled
    // out); the mirrored accessor makes the numbers identical either way.
    util::Samples s = obs::trace_compiled_in()
                          ? r.episodes.cwnd_after_exit_segs()
                          : r.recovery_log.cwnd_after_exit_segs();
    auto row = bench::quantile_row(r.name, s, qs, 0);
    row.push_back(util::Table::fmt_pct(s.fraction_below(3.0)));
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Paper row for reference (segments): PRR 2/3/6/9/15/21/35, "
      "RFC 3517 2/3/5/8/14/19/31, Linux 1/2/3/5/9/12/19.\n");
  return 0;
}
