// Figure 5: time spent in recovery, quantiles per recovery algorithm on
// the Web population (3-way with common random numbers).
//
// Paper (ms): at the 25th/50th/75th/90th/95th/99th quantiles PRR's
// recovery time is consistently the shortest (e.g. median 239-251 ms,
// 99th 13.3-14.3 s), primarily because it suffers fewer timeouts during
// recovery.
#include <cstdio>

#include "bench_common.h"
#include "workload/web_workload.h"

using namespace prr;

int main() {
  bench::print_header(
      "Figure 5: time spent in recovery (quantiles, ms)",
      "PRR < RFC 3517 < Linux at every quantile; PRR shorter mainly via "
      "fewer timeouts in recovery (paper medians ~239-251 ms)");

  workload::WebWorkload pop;
  exp::RunOptions opts;
  opts.connections = 12000;
  opts.seed = 7;
  opts.threads = 0;  // parallel sweep: byte-identical to serial
  auto results = exp::run_arms(pop, bench::three_way_arms(), opts);

  const std::vector<double> qs = {25, 50, 75, 90, 95, 99};
  util::Table t({"arm", "q25", "q50", "q75", "q90", "q95", "q99",
                 "events", "timeouts in recovery"});
  for (const auto& r : results) {
    util::Samples s = r.recovery_log.recovery_time_ms();
    std::vector<std::string> row =
        bench::quantile_row(r.name, s, qs, 0);
    row.push_back(std::to_string(r.recovery_log.count()));
    row.push_back(std::to_string(r.metrics.timeouts_in_recovery));
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected shape: PRR spends the least time in recovery and has the "
      "fewest recovery timeouts; Linux the most.\n");
  return 0;
}
