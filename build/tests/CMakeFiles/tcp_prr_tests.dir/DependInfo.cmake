
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ack_mangler.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_ack_mangler.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_ack_mangler.cc.o.d"
  "/root/repo/tests/test_congestion_control.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_congestion_control.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_congestion_control.cc.o.d"
  "/root/repo/tests/test_connection_integration.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_connection_integration.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_connection_integration.cc.o.d"
  "/root/repo/tests/test_core_prr.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_core_prr.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_core_prr.cc.o.d"
  "/root/repo/tests/test_cross_cc_properties.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_cross_cc_properties.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_cross_cc_properties.cc.o.d"
  "/root/repo/tests/test_ecn.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_ecn.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_ecn.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_failure_injection.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_failure_injection.cc.o.d"
  "/root/repo/tests/test_link.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_link.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_link.cc.o.d"
  "/root/repo/tests/test_loss_models.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_loss_models.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_loss_models.cc.o.d"
  "/root/repo/tests/test_newreno_recovery.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_newreno_recovery.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_newreno_recovery.cc.o.d"
  "/root/repo/tests/test_pacing.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_pacing.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_pacing.cc.o.d"
  "/root/repo/tests/test_paper_figures.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_paper_figures.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_paper_figures.cc.o.d"
  "/root/repo/tests/test_pcap.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_pcap.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_pcap.cc.o.d"
  "/root/repo/tests/test_prr_vectors.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_prr_vectors.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_prr_vectors.cc.o.d"
  "/root/repo/tests/test_quantiles.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_quantiles.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_quantiles.cc.o.d"
  "/root/repo/tests/test_receiver.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_receiver.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_receiver.cc.o.d"
  "/root/repo/tests/test_recovery_policies.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_recovery_policies.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_recovery_policies.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_rto.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_rto.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_rto.cc.o.d"
  "/root/repo/tests/test_scoreboard.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_scoreboard.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_scoreboard.cc.o.d"
  "/root/repo/tests/test_sender_basic.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_sender_basic.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_sender_basic.cc.o.d"
  "/root/repo/tests/test_sender_recovery.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_sender_recovery.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_sender_recovery.cc.o.d"
  "/root/repo/tests/test_seqnum.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_seqnum.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_seqnum.cc.o.d"
  "/root/repo/tests/test_server_app.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_server_app.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_server_app.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_tail_loss_probe.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_tail_loss_probe.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_tail_loss_probe.cc.o.d"
  "/root/repo/tests/test_time.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_time.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_time.cc.o.d"
  "/root/repo/tests/test_timestamps.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_timestamps.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_timestamps.cc.o.d"
  "/root/repo/tests/test_trace_stats.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_trace_stats.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_trace_stats.cc.o.d"
  "/root/repo/tests/test_units.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_units.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_units.cc.o.d"
  "/root/repo/tests/test_window_validation.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_window_validation.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_window_validation.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/tcp_prr_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/tcp_prr_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tcp_prr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
