# Empty dependencies file for tcp_prr_tests.
# This may be replaced when dependencies are built.
