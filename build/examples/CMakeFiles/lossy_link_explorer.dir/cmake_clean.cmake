file(REMOVE_RECURSE
  "CMakeFiles/lossy_link_explorer.dir/lossy_link_explorer.cpp.o"
  "CMakeFiles/lossy_link_explorer.dir/lossy_link_explorer.cpp.o.d"
  "lossy_link_explorer"
  "lossy_link_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_link_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
