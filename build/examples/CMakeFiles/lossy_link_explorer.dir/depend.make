# Empty dependencies file for lossy_link_explorer.
# This may be replaced when dependencies are built.
