file(REMOVE_RECURSE
  "CMakeFiles/web_server_race.dir/web_server_race.cpp.o"
  "CMakeFiles/web_server_race.dir/web_server_race.cpp.o.d"
  "web_server_race"
  "web_server_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
