# Empty dependencies file for web_server_race.
# This may be replaced when dependencies are built.
