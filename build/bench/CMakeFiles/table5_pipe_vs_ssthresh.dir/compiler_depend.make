# Empty compiler generated dependencies file for table5_pipe_vs_ssthresh.
# This may be replaced when dependencies are built.
