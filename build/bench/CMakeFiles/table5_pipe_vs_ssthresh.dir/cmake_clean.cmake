file(REMOVE_RECURSE
  "CMakeFiles/table5_pipe_vs_ssthresh.dir/table5_pipe_vs_ssthresh.cc.o"
  "CMakeFiles/table5_pipe_vs_ssthresh.dir/table5_pipe_vs_ssthresh.cc.o.d"
  "table5_pipe_vs_ssthresh"
  "table5_pipe_vs_ssthresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pipe_vs_ssthresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
