file(REMOVE_RECURSE
  "CMakeFiles/ext_pacing.dir/ext_pacing.cc.o"
  "CMakeFiles/ext_pacing.dir/ext_pacing.cc.o.d"
  "ext_pacing"
  "ext_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
