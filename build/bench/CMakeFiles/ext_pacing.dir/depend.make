# Empty dependencies file for ext_pacing.
# This may be replaced when dependencies are built.
