# Empty compiler generated dependencies file for fig4_banking.
# This may be replaced when dependencies are built.
