file(REMOVE_RECURSE
  "CMakeFiles/fig4_banking.dir/fig4_banking.cc.o"
  "CMakeFiles/fig4_banking.dir/fig4_banking.cc.o.d"
  "fig4_banking"
  "fig4_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
