# Empty compiler generated dependencies file for fig2_timeseq_comparison.
# This may be replaced when dependencies are built.
