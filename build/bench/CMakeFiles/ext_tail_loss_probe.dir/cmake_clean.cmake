file(REMOVE_RECURSE
  "CMakeFiles/ext_tail_loss_probe.dir/ext_tail_loss_probe.cc.o"
  "CMakeFiles/ext_tail_loss_probe.dir/ext_tail_loss_probe.cc.o.d"
  "ext_tail_loss_probe"
  "ext_tail_loss_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tail_loss_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
