# Empty dependencies file for ext_tail_loss_probe.
# This may be replaced when dependencies are built.
