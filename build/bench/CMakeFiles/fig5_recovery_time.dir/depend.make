# Empty dependencies file for fig5_recovery_time.
# This may be replaced when dependencies are built.
