file(REMOVE_RECURSE
  "CMakeFiles/prop_robustness.dir/prop_robustness.cc.o"
  "CMakeFiles/prop_robustness.dir/prop_robustness.cc.o.d"
  "prop_robustness"
  "prop_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
