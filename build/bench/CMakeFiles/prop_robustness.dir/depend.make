# Empty dependencies file for prop_robustness.
# This may be replaced when dependencies are built.
