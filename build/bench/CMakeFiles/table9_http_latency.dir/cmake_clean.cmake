file(REMOVE_RECURSE
  "CMakeFiles/table9_http_latency.dir/table9_http_latency.cc.o"
  "CMakeFiles/table9_http_latency.dir/table9_http_latency.cc.o.d"
  "table9_http_latency"
  "table9_http_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_http_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
