# Empty dependencies file for table9_http_latency.
# This may be replaced when dependencies are built.
