file(REMOVE_RECURSE
  "CMakeFiles/table3_recovery_stats.dir/table3_recovery_stats.cc.o"
  "CMakeFiles/table3_recovery_stats.dir/table3_recovery_stats.cc.o.d"
  "table3_recovery_stats"
  "table3_recovery_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_recovery_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
