# Empty dependencies file for table3_recovery_stats.
# This may be replaced when dependencies are built.
