file(REMOVE_RECURSE
  "CMakeFiles/table2_retx_breakdown.dir/table2_retx_breakdown.cc.o"
  "CMakeFiles/table2_retx_breakdown.dir/table2_retx_breakdown.cc.o.d"
  "table2_retx_breakdown"
  "table2_retx_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_retx_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
