# Empty compiler generated dependencies file for ablation_reduction_bounds.
# This may be replaced when dependencies are built.
