file(REMOVE_RECURSE
  "CMakeFiles/ablation_reduction_bounds.dir/ablation_reduction_bounds.cc.o"
  "CMakeFiles/ablation_reduction_bounds.dir/ablation_reduction_bounds.cc.o.d"
  "ablation_reduction_bounds"
  "ablation_reduction_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reduction_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
