# Empty compiler generated dependencies file for ext_ecn.
# This may be replaced when dependencies are built.
