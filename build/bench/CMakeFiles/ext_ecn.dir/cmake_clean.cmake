file(REMOVE_RECURSE
  "CMakeFiles/ext_ecn.dir/ext_ecn.cc.o"
  "CMakeFiles/ext_ecn.dir/ext_ecn.cc.o.d"
  "ext_ecn"
  "ext_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
