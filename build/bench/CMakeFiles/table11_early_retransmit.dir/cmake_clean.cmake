file(REMOVE_RECURSE
  "CMakeFiles/table11_early_retransmit.dir/table11_early_retransmit.cc.o"
  "CMakeFiles/table11_early_retransmit.dir/table11_early_retransmit.cc.o.d"
  "table11_early_retransmit"
  "table11_early_retransmit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_early_retransmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
