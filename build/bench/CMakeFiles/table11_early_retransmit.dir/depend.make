# Empty dependencies file for table11_early_retransmit.
# This may be replaced when dependencies are built.
