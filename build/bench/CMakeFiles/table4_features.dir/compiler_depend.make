# Empty compiler generated dependencies file for table4_features.
# This may be replaced when dependencies are built.
