file(REMOVE_RECURSE
  "CMakeFiles/table4_features.dir/table4_features.cc.o"
  "CMakeFiles/table4_features.dir/table4_features.cc.o.d"
  "table4_features"
  "table4_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
