# Empty dependencies file for fig3_heavy_loss.
# This may be replaced when dependencies are built.
