file(REMOVE_RECURSE
  "CMakeFiles/fig3_heavy_loss.dir/fig3_heavy_loss.cc.o"
  "CMakeFiles/fig3_heavy_loss.dir/fig3_heavy_loss.cc.o.d"
  "fig3_heavy_loss"
  "fig3_heavy_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heavy_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
