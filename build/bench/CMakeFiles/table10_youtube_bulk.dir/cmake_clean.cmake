file(REMOVE_RECURSE
  "CMakeFiles/table10_youtube_bulk.dir/table10_youtube_bulk.cc.o"
  "CMakeFiles/table10_youtube_bulk.dir/table10_youtube_bulk.cc.o.d"
  "table10_youtube_bulk"
  "table10_youtube_bulk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_youtube_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
