# Empty compiler generated dependencies file for table10_youtube_bulk.
# This may be replaced when dependencies are built.
