file(REMOVE_RECURSE
  "CMakeFiles/table6_convergence.dir/table6_convergence.cc.o"
  "CMakeFiles/table6_convergence.dir/table6_convergence.cc.o.d"
  "table6_convergence"
  "table6_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
