# Empty dependencies file for table6_convergence.
# This may be replaced when dependencies are built.
