file(REMOVE_RECURSE
  "CMakeFiles/ext_gaimd_sweep.dir/ext_gaimd_sweep.cc.o"
  "CMakeFiles/ext_gaimd_sweep.dir/ext_gaimd_sweep.cc.o.d"
  "ext_gaimd_sweep"
  "ext_gaimd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gaimd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
