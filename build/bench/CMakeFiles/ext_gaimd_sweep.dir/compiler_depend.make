# Empty compiler generated dependencies file for ext_gaimd_sweep.
# This may be replaced when dependencies are built.
