file(REMOVE_RECURSE
  "CMakeFiles/micro_perack_cost.dir/micro_perack_cost.cc.o"
  "CMakeFiles/micro_perack_cost.dir/micro_perack_cost.cc.o.d"
  "micro_perack_cost"
  "micro_perack_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_perack_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
