# Empty compiler generated dependencies file for micro_perack_cost.
# This may be replaced when dependencies are built.
