file(REMOVE_RECURSE
  "CMakeFiles/fig1_latency_vs_rtt.dir/fig1_latency_vs_rtt.cc.o"
  "CMakeFiles/fig1_latency_vs_rtt.dir/fig1_latency_vs_rtt.cc.o.d"
  "fig1_latency_vs_rtt"
  "fig1_latency_vs_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_latency_vs_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
