# Empty compiler generated dependencies file for table7_cwnd_after_recovery.
# This may be replaced when dependencies are built.
