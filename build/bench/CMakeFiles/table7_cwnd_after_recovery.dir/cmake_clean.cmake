file(REMOVE_RECURSE
  "CMakeFiles/table7_cwnd_after_recovery.dir/table7_cwnd_after_recovery.cc.o"
  "CMakeFiles/table7_cwnd_after_recovery.dir/table7_cwnd_after_recovery.cc.o.d"
  "table7_cwnd_after_recovery"
  "table7_cwnd_after_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_cwnd_after_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
