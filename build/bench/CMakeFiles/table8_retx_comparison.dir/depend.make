# Empty dependencies file for table8_retx_comparison.
# This may be replaced when dependencies are built.
