file(REMOVE_RECURSE
  "CMakeFiles/table8_retx_comparison.dir/table8_retx_comparison.cc.o"
  "CMakeFiles/table8_retx_comparison.dir/table8_retx_comparison.cc.o.d"
  "table8_retx_comparison"
  "table8_retx_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_retx_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
