file(REMOVE_RECURSE
  "libtcp_prr.a"
)
