
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/prr.cc" "src/CMakeFiles/tcp_prr.dir/core/prr.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/core/prr.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/tcp_prr.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/exp/experiment.cc.o.d"
  "/root/repo/src/exp/scenarios.cc" "src/CMakeFiles/tcp_prr.dir/exp/scenarios.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/exp/scenarios.cc.o.d"
  "/root/repo/src/http/server_app.cc" "src/CMakeFiles/tcp_prr.dir/http/server_app.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/http/server_app.cc.o.d"
  "/root/repo/src/net/ack_mangler.cc" "src/CMakeFiles/tcp_prr.dir/net/ack_mangler.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/net/ack_mangler.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/tcp_prr.dir/net/link.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/net/link.cc.o.d"
  "/root/repo/src/net/loss_model.cc" "src/CMakeFiles/tcp_prr.dir/net/loss_model.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/net/loss_model.cc.o.d"
  "/root/repo/src/net/path.cc" "src/CMakeFiles/tcp_prr.dir/net/path.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/net/path.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/tcp_prr.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/tcp_prr.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/tcp_prr.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/latency.cc" "src/CMakeFiles/tcp_prr.dir/stats/latency.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/stats/latency.cc.o.d"
  "/root/repo/src/stats/recovery_log.cc" "src/CMakeFiles/tcp_prr.dir/stats/recovery_log.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/stats/recovery_log.cc.o.d"
  "/root/repo/src/tcp/cc/binomial.cc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/binomial.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/binomial.cc.o.d"
  "/root/repo/src/tcp/cc/cubic.cc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/cubic.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/cubic.cc.o.d"
  "/root/repo/src/tcp/cc/gaimd.cc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/gaimd.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/gaimd.cc.o.d"
  "/root/repo/src/tcp/cc/newreno.cc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/newreno.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/cc/newreno.cc.o.d"
  "/root/repo/src/tcp/connection.cc" "src/CMakeFiles/tcp_prr.dir/tcp/connection.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/connection.cc.o.d"
  "/root/repo/src/tcp/metrics.cc" "src/CMakeFiles/tcp_prr.dir/tcp/metrics.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/metrics.cc.o.d"
  "/root/repo/src/tcp/receiver.cc" "src/CMakeFiles/tcp_prr.dir/tcp/receiver.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/receiver.cc.o.d"
  "/root/repo/src/tcp/recovery/prr.cc" "src/CMakeFiles/tcp_prr.dir/tcp/recovery/prr.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/recovery/prr.cc.o.d"
  "/root/repo/src/tcp/recovery/rate_halving.cc" "src/CMakeFiles/tcp_prr.dir/tcp/recovery/rate_halving.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/recovery/rate_halving.cc.o.d"
  "/root/repo/src/tcp/rto.cc" "src/CMakeFiles/tcp_prr.dir/tcp/rto.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/rto.cc.o.d"
  "/root/repo/src/tcp/scoreboard.cc" "src/CMakeFiles/tcp_prr.dir/tcp/scoreboard.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/scoreboard.cc.o.d"
  "/root/repo/src/tcp/sender.cc" "src/CMakeFiles/tcp_prr.dir/tcp/sender.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/tcp/sender.cc.o.d"
  "/root/repo/src/trace/pcap.cc" "src/CMakeFiles/tcp_prr.dir/trace/pcap.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/trace/pcap.cc.o.d"
  "/root/repo/src/trace/timeseq.cc" "src/CMakeFiles/tcp_prr.dir/trace/timeseq.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/trace/timeseq.cc.o.d"
  "/root/repo/src/util/quantiles.cc" "src/CMakeFiles/tcp_prr.dir/util/quantiles.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/util/quantiles.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/tcp_prr.dir/util/table.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/util/table.cc.o.d"
  "/root/repo/src/workload/population.cc" "src/CMakeFiles/tcp_prr.dir/workload/population.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/workload/population.cc.o.d"
  "/root/repo/src/workload/video_workload.cc" "src/CMakeFiles/tcp_prr.dir/workload/video_workload.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/workload/video_workload.cc.o.d"
  "/root/repo/src/workload/web_workload.cc" "src/CMakeFiles/tcp_prr.dir/workload/web_workload.cc.o" "gcc" "src/CMakeFiles/tcp_prr.dir/workload/web_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
