# Empty dependencies file for tcp_prr.
# This may be replaced when dependencies are built.
